file(REMOVE_RECURSE
  "libedge_predictor.a"
)
