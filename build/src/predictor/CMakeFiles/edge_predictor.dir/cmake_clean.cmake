file(REMOVE_RECURSE
  "CMakeFiles/edge_predictor.dir/dependence.cc.o"
  "CMakeFiles/edge_predictor.dir/dependence.cc.o.d"
  "CMakeFiles/edge_predictor.dir/next_block.cc.o"
  "CMakeFiles/edge_predictor.dir/next_block.cc.o.d"
  "CMakeFiles/edge_predictor.dir/oracle.cc.o"
  "CMakeFiles/edge_predictor.dir/oracle.cc.o.d"
  "CMakeFiles/edge_predictor.dir/store_sets.cc.o"
  "CMakeFiles/edge_predictor.dir/store_sets.cc.o.d"
  "libedge_predictor.a"
  "libedge_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
