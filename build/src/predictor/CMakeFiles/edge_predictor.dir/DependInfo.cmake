
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictor/dependence.cc" "src/predictor/CMakeFiles/edge_predictor.dir/dependence.cc.o" "gcc" "src/predictor/CMakeFiles/edge_predictor.dir/dependence.cc.o.d"
  "/root/repo/src/predictor/next_block.cc" "src/predictor/CMakeFiles/edge_predictor.dir/next_block.cc.o" "gcc" "src/predictor/CMakeFiles/edge_predictor.dir/next_block.cc.o.d"
  "/root/repo/src/predictor/oracle.cc" "src/predictor/CMakeFiles/edge_predictor.dir/oracle.cc.o" "gcc" "src/predictor/CMakeFiles/edge_predictor.dir/oracle.cc.o.d"
  "/root/repo/src/predictor/store_sets.cc" "src/predictor/CMakeFiles/edge_predictor.dir/store_sets.cc.o" "gcc" "src/predictor/CMakeFiles/edge_predictor.dir/store_sets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/edge_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/edge_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/edge_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
