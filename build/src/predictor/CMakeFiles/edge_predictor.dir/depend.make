# Empty dependencies file for edge_predictor.
# This may be replaced when dependencies are built.
