file(REMOVE_RECURSE
  "CMakeFiles/edge_sim.dir/simulator.cc.o"
  "CMakeFiles/edge_sim.dir/simulator.cc.o.d"
  "libedge_sim.a"
  "libedge_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
