file(REMOVE_RECURSE
  "libedge_sim.a"
)
