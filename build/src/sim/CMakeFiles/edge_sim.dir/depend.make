# Empty dependencies file for edge_sim.
# This may be replaced when dependencies are built.
