#include "bench/bench_util.hh"

#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <tuple>

#include "common/hostinfo.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/thread_pool.hh"
#include "serve/fabric.hh"
#include "sim/run_pool.hh"
#include "super/supervisor.hh"
#include "super/worker.hh"
#include "triage/repro.hh"

namespace edge::bench {

std::string
RunRow::failure() const
{
    if (ok())
        return "";
    std::string why;
    if (!result.halted)
        why += "did not finish; ";
    else if (!result.archMatch)
        why += "diverged from the reference; ";
    if (!result.error.ok())
        why += result.error.format();
    return strfmt("%s/%s (seed %llu): %s", spec.kernel.c_str(),
                  spec.config.c_str(),
                  static_cast<unsigned long long>(spec.seed),
                  why.c_str());
}

BenchArgs
benchArgs(int argc, char **argv, std::uint64_t default_iters)
{
    // An --isolate grid re-execs this very binary (/proc/self/exe) as
    // its worker; every bench main() calls benchArgs() first, so the
    // worker dispatch lives here.
    if (argc >= 2 && std::strcmp(argv[1], "--worker-cell") == 0)
        std::exit(super::workerCellMain(std::cin, std::cout));

    BenchArgs args;
    args.iterations = default_iters;
    args.start = std::chrono::steady_clock::now();
    if (const char *dir = std::getenv("EDGE_REPRO_DIR"))
        args.reproDir = dir;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "%s needs an argument", arg.c_str());
            return argv[++i];
        };
        if (arg == "-j") {
            args.threads =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            args.threads = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 2, nullptr, 10));
        } else if (arg == "--json") {
            args.jsonPath = next();
        } else if (arg == "--repro-dir") {
            args.reproDir = next();
        } else if (arg == "--isolate") {
            args.isolate = true;
        } else if (arg == "--journal-dir") {
            args.journalDir = next();
            args.isolate = true;
        } else if (arg == "--resume") {
            args.resumePath = next();
            args.isolate = true;
        } else if (arg == "--cell-timeout-ms") {
            args.cellTimeoutMs =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--engine") {
            args.engine = next();
            fatal_if(args.engine != "tick" && args.engine != "event" &&
                         args.engine != "both",
                     "--engine expects 'tick', 'event' or 'both'");
        } else if (arg == "--baseline") {
            args.baselinePath = next();
        } else if (arg == "--max-regress") {
            args.maxRegressPct = std::strtod(next(), nullptr);
        } else if (arg == "--agents") {
            args.agentsPort = static_cast<std::uint16_t>(
                std::strtoul(next(), nullptr, 10));
            args.agents = true;
            args.isolate = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [iterations] [-j N] [--json path] "
                        "[--repro-dir dir] [--isolate] "
                        "[--journal-dir dir] [--resume journal] "
                        "[--cell-timeout-ms N] [--agents port] "
                        "[--engine tick|event|both] "
                        "[--baseline json] [--max-regress pct]\n",
                        argv[0]);
            std::exit(0);
        } else if (!arg.empty() && arg[0] != '-') {
            args.iterations = std::strtoull(arg.c_str(), nullptr, 10);
        } else {
            fatal("unknown bench argument '%s' "
                  "(usage: [iterations] [-j N] [--json path] "
                  "[--repro-dir dir] [--isolate] [--journal-dir dir] "
                  "[--resume journal] [--cell-timeout-ms N] "
                  "[--agents port] [--engine tick|event|both] "
                  "[--baseline json] [--max-regress pct])",
                  arg.c_str());
        }
    }
    return args;
}

RunRow
runOne(const RunSpec &spec)
{
    wl::KernelParams kp;
    kp.iterations = spec.iterations;
    kp.seed = spec.seed;
    core::MachineConfig cfg = sim::Configs::byName(spec.config);
    if (spec.tweak)
        spec.tweak(cfg);
    sim::Simulator s(wl::build(spec.kernel, kp), cfg);
    return {spec, s.run(spec.maxCycles)};
}

std::vector<RunRow>
runSpecs(const std::vector<RunSpec> &specs, unsigned threads)
{
    // One program per distinct (kernel, iterations, seed); every cell
    // of that kernel shares its reference execution via the RunPool.
    using ProgKey = std::tuple<std::string, std::uint64_t, std::uint64_t>;
    std::map<ProgKey, std::unique_ptr<isa::Program>> programs;

    std::vector<sim::RunJob> jobs;
    jobs.reserve(specs.size());
    for (const RunSpec &spec : specs) {
        ProgKey key{spec.kernel, spec.iterations, spec.seed};
        auto &prog = programs[key];
        if (!prog) {
            wl::KernelParams kp;
            kp.iterations = spec.iterations;
            kp.seed = spec.seed;
            prog = std::make_unique<isa::Program>(
                wl::build(spec.kernel, kp));
        }
        sim::RunJob job;
        job.program = prog.get();
        job.config = sim::Configs::byName(spec.config);
        if (spec.tweak)
            spec.tweak(job.config);
        job.maxCycles = spec.maxCycles;
        jobs.push_back(std::move(job));
    }

    sim::RunPool pool(threads);
    std::vector<sim::RunResult> results = pool.runAll(jobs);

    std::vector<RunRow> rows;
    rows.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        rows.push_back({specs[i], std::move(results[i])});
    return rows;
}

namespace {

/** The supervised grid: every spec as a sandboxed worker cell, run by
 *  the local fork/exec supervisor or — under --agents — by a campaign
 *  fabric that leases cells to remote executors. */
std::vector<RunRow>
runSpecsIsolated(const std::vector<RunSpec> &specs,
                 const BenchArgs &args, const std::string &bench_name)
{
    super::installStopHandlers();
    std::string journal_path;
    if (!args.resumePath.empty())
        journal_path = args.resumePath;
    else if (!args.journalDir.empty())
        journal_path =
            args.journalDir + "/" + bench_name + ".journal";

    // Repro capture stays in finishBench so isolated and in-process
    // grids produce their .repro.json files through one code path.
    std::unique_ptr<super::Supervisor> local;
    std::unique_ptr<serve::Fabric> fabric;
    super::CellRunner *runner = nullptr;
    if (args.agents) {
        serve::FabricOptions fo;
        fo.listenPort = args.agentsPort;
        fo.localJobs = args.threads;
        fo.cellTimeoutMs = args.cellTimeoutMs;
        fo.journalPath = journal_path;
        fo.resume = !args.resumePath.empty();
        fabric = std::make_unique<serve::Fabric>(fo);
        std::string err;
        fatal_if(!fabric->start(&err), "%s: --agents: %s",
                 bench_name.c_str(), err.c_str());
        inform("%s: fabric coordinator on port %u (cells lease to "
               "connected agents; none connected -> local workers)",
               bench_name.c_str(), fabric->port());
        runner = fabric.get();
    } else {
        super::SupervisorOptions so;
        so.jobs = args.threads;
        so.cellTimeoutMs = args.cellTimeoutMs;
        so.journalPath = journal_path;
        so.resume = !args.resumePath.empty();
        local = std::make_unique<super::Supervisor>(so);
        runner = local.get();
    }
    super::CellRunner &sup = *runner;

    // One program hash per distinct (kernel, iterations, seed), same
    // sharing key as the in-process pool.
    using ProgKey =
        std::tuple<std::string, std::uint64_t, std::uint64_t>;
    std::map<ProgKey, std::uint64_t> hashes;

    std::vector<super::CellSpec> cells;
    cells.reserve(specs.size());
    for (const RunSpec &spec : specs) {
        super::CellSpec cell;
        cell.program.kernel = spec.kernel;
        cell.program.params.iterations = spec.iterations;
        cell.program.params.seed = spec.seed;
        ProgKey key{spec.kernel, spec.iterations, spec.seed};
        auto it = hashes.find(key);
        if (it == hashes.end())
            it = hashes
                     .emplace(key, triage::programHash(
                                       triage::buildProgram(
                                           cell.program)))
                     .first;
        cell.programHash = it->second;
        cell.config = sim::Configs::byName(spec.config);
        if (spec.tweak)
            spec.tweak(cell.config);
        cell.maxCycles = spec.maxCycles;
        cells.push_back(std::move(cell));
    }

    std::vector<super::CellOutcome> outs = sup.runAll(cells);

    bool interrupted = false;
    std::vector<RunRow> rows;
    rows.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!outs[i].ran) {
            interrupted = true;
            continue;
        }
        RunRow row{specs[i], std::move(outs[i].result)};
        row.reproPath = std::move(outs[i].reproPath);
        rows.push_back(std::move(row));
    }
    if (interrupted) {
        int sig = super::stopSignal() ? super::stopSignal() : SIGINT;
        std::fprintf(stderr,
                     "%s: interrupted — %zu cell(s) journaled this "
                     "session, %zu replayed, %zu failure(s)\n",
                     bench_name.c_str(), sup.completed(),
                     sup.skipped(), sup.failures());
        std::string hint = sup.resumeHint();
        if (!hint.empty())
            std::fprintf(stderr, "  %s\n", hint.c_str());
        std::exit(128 + sig);
    }
    return rows;
}

} // namespace

std::vector<RunRow>
runSpecs(const std::vector<RunSpec> &specs, const BenchArgs &args,
         const std::string &bench_name)
{
    if (args.isolate)
        return runSpecsIsolated(specs, args, bench_name);
    return runSpecs(specs, args.threads);
}

std::vector<RunRow>
runMatrix(const std::vector<std::string> &kernels,
          const std::vector<std::string> &configs,
          std::uint64_t iterations, const ConfigTweak &tweak,
          unsigned threads)
{
    std::vector<RunSpec> specs;
    specs.reserve(kernels.size() * configs.size());
    for (const auto &k : kernels) {
        for (const auto &c : configs) {
            RunSpec spec;
            spec.kernel = k;
            spec.config = c;
            spec.iterations = iterations;
            spec.tweak = tweak;
            specs.push_back(std::move(spec));
        }
    }
    return runSpecs(specs, threads);
}

std::vector<RunRow>
runMatrix(const std::vector<std::string> &kernels,
          const std::vector<std::string> &configs,
          std::uint64_t iterations, const ConfigTweak &tweak,
          const BenchArgs &args, const std::string &bench_name)
{
    std::vector<RunSpec> specs;
    specs.reserve(kernels.size() * configs.size());
    for (const auto &k : kernels) {
        for (const auto &c : configs) {
            RunSpec spec;
            spec.kernel = k;
            spec.config = c;
            spec.iterations = iterations;
            spec.tweak = tweak;
            specs.push_back(std::move(spec));
        }
    }
    return runSpecs(specs, args, bench_name);
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
writeJson(const std::string &path, const std::string &bench_name,
          const BenchArgs &args, const std::vector<RunRow> &rows,
          double wall_seconds)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot write JSON to %s", path.c_str());
        return;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"iterations\": %llu,\n"
                 "  \"threads\": %u,\n"
                 "  \"engine\": \"%s\",\n"
                 "  \"host\": %s,\n"
                 "  \"wall_seconds\": %.3f,\n"
                 "  \"cells\": [\n",
                 jsonEscape(bench_name).c_str(),
                 static_cast<unsigned long long>(args.iterations),
                 args.threads == 0 ? ThreadPool::defaultThreads()
                                   : args.threads,
                 jsonEscape(args.engine).c_str(),
                 hostInfoJson().c_str(), wall_seconds);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const RunRow &row = rows[i];
        const sim::RunResult &r = row.result;
        std::fprintf(
            f,
            "    {\"kernel\": \"%s\", \"config\": \"%s\", "
            "\"seed\": %llu, \"cycles\": %llu, \"insts\": %llu, "
            "\"blocks\": %llu, \"ipc\": %.4f, \"ok\": %s, "
            "\"violations\": %llu, \"resends\": %llu, "
            "\"reexecs\": %llu, \"upgrades\": %llu, "
            "\"flushes\": %llu, \"error\": \"%s\", "
            "\"retries\": %u, \"backoff_ms\": %llu, "
            "\"repro\": \"%s\"}%s\n",
            jsonEscape(row.spec.kernel).c_str(),
            jsonEscape(row.spec.config).c_str(),
            static_cast<unsigned long long>(row.spec.seed),
            static_cast<unsigned long long>(r.cycles),
            static_cast<unsigned long long>(r.committedInsts),
            static_cast<unsigned long long>(r.committedBlocks),
            r.ipc(), row.ok() ? "true" : "false",
            static_cast<unsigned long long>(r.violations),
            static_cast<unsigned long long>(r.resends),
            static_cast<unsigned long long>(r.reexecs),
            static_cast<unsigned long long>(r.upgrades),
            static_cast<unsigned long long>(r.ctrlFlushes +
                                            r.violFlushes),
            jsonEscape(r.error.ok() ? "" : r.error.format()).c_str(),
            r.retries,
            static_cast<unsigned long long>(r.backoffMs),
            jsonEscape(row.reproPath).c_str(),
            i + 1 < rows.size() ? "," : "");
    }
    std::size_t quarantined = 0, fatal_cells = 0;
    for (const RunRow &row : rows) {
        quarantined += row.quarantined() ? 1 : 0;
        fatal_cells += row.fatalTransient() ? 1 : 0;
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"quarantined\": %zu,\n"
                 "  \"fatal\": %zu\n"
                 "}\n",
                 quarantined, fatal_cells);
    std::fclose(f);
}

} // namespace

int
finishBench(const std::string &bench_name, const BenchArgs &args,
            std::vector<RunRow> &rows)
{
    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      args.start)
            .count();
    // Capture repros first so the failure report can point at them.
    if (!args.reproDir.empty()) {
        for (RunRow &row : rows) {
            if (row.ok())
                continue;
            core::MachineConfig cfg =
                sim::Configs::byName(row.spec.config);
            if (row.spec.tweak)
                row.spec.tweak(cfg);
            triage::ProgramRef ref{
                row.spec.kernel,
                {row.spec.iterations, row.spec.seed}};
            triage::ReproSpec spec = triage::captureFromResult(
                ref, cfg, row.spec.maxCycles, row.result);
            row.reproPath = triage::captureToFile(spec, args.reproDir);
        }
    }
    std::size_t quarantined = 0, fatal_cells = 0;
    for (const RunRow &row : rows) {
        if (row.ok())
            continue;
        if (quarantined + fatal_cells == 0)
            std::fprintf(stderr, "\nFAILED cells:\n");
        quarantined += row.quarantined() ? 1 : 0;
        fatal_cells += row.fatalTransient() ? 1 : 0;
        std::fprintf(stderr, "  %s\n", row.failure().c_str());
        if (row.result.retries != 0)
            std::fprintf(stderr, "    retries=%u backoff_ms=%llu\n",
                         row.result.retries,
                         static_cast<unsigned long long>(
                             row.result.backoffMs));
        if (!row.reproPath.empty())
            std::fprintf(stderr,
                         "    to reproduce: edgesim --replay %s\n",
                         row.reproPath.c_str());
    }
    if (!args.jsonPath.empty())
        writeJson(args.jsonPath, bench_name, args, rows, wall);
    if (quarantined + fatal_cells)
        std::fprintf(stderr,
                     "%zu/%zu cells failed (%zu quarantined "
                     "deterministic, %zu fatal after retries)\n",
                     quarantined + fatal_cells, rows.size(),
                     quarantined, fatal_cells);
    return quarantined + fatal_cells ? 1 : 0;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

void
printRow(const std::string &name, const std::vector<std::string> &cells,
         unsigned width)
{
    std::fputs(padRight(name, 14).c_str(), stdout);
    for (const auto &c : cells)
        std::fputs(padLeft(c, width).c_str(), stdout);
    std::fputc('\n', stdout);
}

void
printHeader(const std::string &name, const std::vector<std::string> &cols,
            unsigned width)
{
    printRow(name, cols, width);
    std::size_t total = 14 + cols.size() * width;
    std::fputs((std::string(total, '-') + "\n").c_str(), stdout);
}

std::string
fmtF(double v, int prec)
{
    return strfmt("%.*f", prec, v);
}

std::string
fmtU(std::uint64_t v)
{
    return strfmt("%llu", static_cast<unsigned long long>(v));
}

} // namespace edge::bench
