#include "bench/bench_util.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace edge::bench {

RunRow
runOne(const RunSpec &spec)
{
    wl::KernelParams kp;
    kp.iterations = spec.iterations;
    kp.seed = spec.seed;
    core::MachineConfig cfg = sim::Configs::byName(spec.config);
    if (spec.tweak)
        spec.tweak(cfg);
    sim::Simulator s(wl::build(spec.kernel, kp), cfg);
    sim::RunResult r = s.run();
    fatal_if(!r.halted, "%s/%s did not finish", spec.kernel.c_str(),
             spec.config.c_str());
    fatal_if(!r.archMatch, "%s/%s diverged from the reference",
             spec.kernel.c_str(), spec.config.c_str());
    return {spec, r};
}

std::vector<RunRow>
runMatrix(const std::vector<std::string> &kernels,
          const std::vector<std::string> &configs,
          std::uint64_t iterations, const ConfigTweak &tweak)
{
    std::vector<RunRow> rows;
    for (const auto &k : kernels) {
        for (const auto &c : configs) {
            RunSpec spec;
            spec.kernel = k;
            spec.config = c;
            spec.iterations = iterations;
            spec.tweak = tweak;
            rows.push_back(runOne(spec));
        }
    }
    return rows;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

void
printRow(const std::string &name, const std::vector<std::string> &cells,
         unsigned width)
{
    std::fputs(padRight(name, 14).c_str(), stdout);
    for (const auto &c : cells)
        std::fputs(padLeft(c, width).c_str(), stdout);
    std::fputc('\n', stdout);
}

void
printHeader(const std::string &name, const std::vector<std::string> &cols,
            unsigned width)
{
    printRow(name, cols, width);
    std::size_t total = 14 + cols.size() * width;
    std::fputs((std::string(total, '-') + "\n").c_str(), stdout);
}

std::string
fmtF(double v, int prec)
{
    return strfmt("%.*f", prec, v);
}

std::string
fmtU(std::uint64_t v)
{
    return strfmt("%llu", static_cast<unsigned long long>(v));
}

} // namespace edge::bench
