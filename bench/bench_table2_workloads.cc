/**
 * @file
 * Table 2: workload characterisation. For every kernel: dynamic
 * block/instruction counts, memory-operation density, exit
 * prediction accuracy, and — the property the whole paper turns on —
 * the *alias potential*: the fraction of dynamic loads that have an
 * architecturally conflicting older store within a window-sized
 * span of dynamic blocks (computed exactly from the reference
 * trace), next to the violation rate blind speculation actually
 * incurs on the timing machine.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "predictor/oracle.hh"

using namespace edge;
using namespace edge::bench;

namespace {

/** Fraction of loads conflicting with a store <= span blocks older. */
double
aliasPotential(const pred::OracleDb &db, unsigned span)
{
    std::uint64_t loads = 0, conflicting = 0;
    for (std::uint64_t b = 0; b < db.numBlocks(); ++b) {
        for (Lsid l = 0;; ++l) {
            const pred::OracleDb::MemOp *op = db.memOp(b, l);
            if (!op)
                break;
            if (op->isStore)
                continue;
            ++loads;
            bool hit = false;
            std::uint64_t lo = b >= span ? b - span : 0;
            for (std::uint64_t ob = lo; ob <= b && !hit; ++ob) {
                for (Lsid ol = 0;; ++ol) {
                    if (ob == b && ol >= l)
                        break;
                    const pred::OracleDb::MemOp *so = db.memOp(ob, ol);
                    if (!so)
                        break;
                    if (so->isStore &&
                        pred::rangesOverlap(so->addr, so->bytes,
                                            op->addr, op->bytes)) {
                        hit = true;
                        break;
                    }
                }
            }
            conflicting += hit;
        }
    }
    return loads ? static_cast<double>(conflicting) /
                       static_cast<double>(loads)
                 : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = benchArgs(argc, argv, 2000);
    std::printf("Table 2: workload characterisation (%llu iterations; "
                "alias span = 8 blocks)\n\n",
                static_cast<unsigned long long>(args.iterations));
    printHeader("benchmark",
                {"dynBlocks", "dynInsts", "ins/blk", "mem/blk",
                 "alias%", "viol/1k", "exitAcc%"},
                10);

    // Characterisation needs the live Simulator (oracle db, reference
    // trace), so each kernel runs whole in a worker and hands back its
    // formatted cells; rows print in kernel order afterwards.
    struct Row
    {
        bool ok = false;
        std::vector<std::string> cells;
    };
    const auto &kernels = wl::kernels();
    ThreadPool pool(args.threads);
    std::vector<Row> table = parallelIndex(
        pool, kernels.size(), [&](std::size_t i) -> Row {
            const auto &info = kernels[i];
            wl::KernelParams kp;
            kp.iterations = args.iterations;
            sim::Simulator s(wl::build(info.name, kp),
                             sim::Configs::blindFlush());
            sim::RunResult r = s.run();
            if (!r.halted || !r.archMatch)
                return {};

            double alias = aliasPotential(s.oracleDb(), 8);
            std::uint64_t mem_ops = r.loads + r.stores;
            double correct = static_cast<double>(
                s.stats().counterValue("nbp.correct"));
            double wrong = static_cast<double>(
                s.stats().counterValue("nbp.wrong"));
            double exit_acc = 100.0 * correct / (correct + wrong);

            Row row;
            row.ok = true;
            row.cells = {
                fmtU(s.refDynBlocks()), fmtU(s.refDynInsts()),
                fmtF(static_cast<double>(s.refDynInsts()) /
                     static_cast<double>(s.refDynBlocks()), 1),
                fmtF(static_cast<double>(mem_ops) /
                     static_cast<double>(r.committedBlocks), 1),
                fmtF(alias * 100.0, 1),
                fmtF(1000.0 * static_cast<double>(r.violations) /
                     static_cast<double>(r.committedBlocks), 1),
                fmtF(exit_acc, 1)};
            return row;
        });

    bool any_failed = false;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        if (!table[i].ok) {
            any_failed = true;
            printRow(kernels[i].name, {"FAILED"}, 10);
            continue;
        }
        printRow(kernels[i].name, table[i].cells, 10);
    }
    std::printf("\n(SPEC CPU2000 analogues: ");
    for (const auto &info : wl::kernels())
        std::printf("%s=%s ", info.name.c_str(),
                    info.specAnalog.c_str());
    std::printf(")\n");
    if (any_failed) {
        std::fprintf(stderr, "bench_table2_workloads: some kernels "
                             "failed to run\n");
        return 1;
    }
    return 0;
}
