/**
 * @file
 * Extension experiment (beyond the paper's evaluation): the second
 * application of the DSRE protocol. The abstract frames DSRE as a
 * general selective re-execution mechanism and evaluates load/store
 * dependence speculation as "one application"; here we use the same
 * waves to speculate on load *values* — a long-latency miss replies
 * immediately with the last value seen at that address, and the real
 * value rides behind as a corrective (or confirming) wave.
 *
 * Reports IPC for plain DSRE vs DSRE+VP, the prediction accuracy,
 * and the correction traffic, per benchmark.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/logging.hh"

using namespace edge;
using namespace edge::bench;

int
main(int argc, char **argv)
{
    std::uint64_t iters = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 2000;

    std::printf("Extension: miss value prediction through the DSRE "
                "wave protocol\n\n");
    printHeader("benchmark",
                {"IPC dsre", "IPC +vp", "speedup", "preds/1k",
                 "vpAcc%"},
                11);

    std::vector<double> ratios;
    for (const auto &k : wl::kernelNames()) {
        RunSpec base{k, "dsre", iters, 1, nullptr};
        RunRow rb = runOne(base);

        wl::KernelParams kp;
        kp.iterations = iters;
        sim::Simulator s(wl::build(k, kp), sim::Configs::dsreVp());
        sim::RunResult rv = s.run();
        fatal_if(!rv.halted || !rv.archMatch, "%s failed", k.c_str());
        double preds = static_cast<double>(
            s.stats().counterValue("lsq.vp_predictions"));
        double correct = static_cast<double>(
            s.stats().counterValue("lsq.vp_correct"));

        double ratio = rv.ipc() / rb.result.ipc();
        ratios.push_back(ratio);
        printRow(k,
                 {fmtF(rb.result.ipc()), fmtF(rv.ipc()), fmtF(ratio),
                  fmtF(1000.0 * preds /
                       static_cast<double>(rv.committedInsts), 1),
                  fmtF(preds ? 100.0 * correct / preds : 0.0, 1)},
                 11);
    }
    std::printf("\ngeomean speedup from value prediction: %.3f\n",
                geomean(ratios));
    std::printf("(Value prediction helps when misses are long and "
                "last-value locality is high; mispredictions cost a "
                "corrective wave — the same machinery as dependence "
                "misspeculation.)\n");
    return 0;
}
