/**
 * @file
 * Extension experiment (beyond the paper's evaluation): the second
 * application of the DSRE protocol. The abstract frames DSRE as a
 * general selective re-execution mechanism and evaluates load/store
 * dependence speculation as "one application"; here we use the same
 * waves to speculate on load *values* — a long-latency miss replies
 * immediately with the last value seen at that address, and the real
 * value rides behind as a corrective (or confirming) wave.
 *
 * Reports IPC for plain DSRE vs DSRE+VP, the prediction accuracy,
 * and the correction traffic, per benchmark.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/logging.hh"

using namespace edge;
using namespace edge::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = benchArgs(argc, argv, 2000);

    std::printf("Extension: miss value prediction through the DSRE "
                "wave protocol\n\n");
    printHeader("benchmark",
                {"IPC dsre", "IPC +vp", "speedup", "preds/1k",
                 "vpAcc%"},
                11);

    // Rows come back kernel-major: [dsre, dsre-vp] per kernel, both
    // sharing the kernel's reference execution.
    std::vector<RunRow> rows =
        runMatrix(wl::kernelNames(), {"dsre", "dsre-vp"},
                  args.iterations, nullptr, args,
                  "bench_ext_value_pred");

    std::vector<double> ratios;
    std::size_t idx = 0;
    for (const auto &k : wl::kernelNames()) {
        const sim::RunResult &rb = rows[idx++].result;
        const sim::RunResult &rv = rows[idx++].result;
        double preds =
            static_cast<double>(rv.counter("lsq.vp_predictions"));
        double correct =
            static_cast<double>(rv.counter("lsq.vp_correct"));

        double ratio = rv.ipc() / rb.ipc();
        ratios.push_back(ratio);
        printRow(k,
                 {fmtF(rb.ipc()), fmtF(rv.ipc()), fmtF(ratio),
                  fmtF(1000.0 * preds /
                       static_cast<double>(rv.committedInsts), 1),
                  fmtF(preds ? 100.0 * correct / preds : 0.0, 1)},
                 11);
    }
    std::printf("\ngeomean speedup from value prediction: %.3f\n",
                geomean(ratios));
    std::printf("(Value prediction helps when misses are long and "
                "last-value locality is high; mispredictions cost a "
                "corrective wave — the same machinery as dependence "
                "misspeculation.)\n");
    return 0;
}
