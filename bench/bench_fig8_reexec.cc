/**
 * @file
 * Figure 8: the cost side of DSRE — how much work selective
 * re-execution actually re-executes. Per benchmark: the fraction of
 * ALU issues that are re-fires, corrective resends and commit-wave
 * upgrades per 1000 committed instructions, value-identity squash
 * counts, storm-throttle deferrals, and the distribution of
 * re-execution wave depths (how far a corrective wave travels
 * through the dataflow graph before dying out).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/logging.hh"

using namespace edge;
using namespace edge::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = benchArgs(argc, argv, 2000);

    std::printf("Figure 8: DSRE re-execution overhead (dsre config)\n\n");
    printHeader("benchmark",
                {"reexec%", "resend/1k", "upgr/1k", "squash/1k",
                 "defer/1k", "waveP50", "waveP90", "waveMax"},
                10);

    std::vector<RunRow> rows = runMatrix(wl::kernelNames(), {"dsre"},
                                         args.iterations, nullptr,
                                         args, "bench_fig8_reexec");

    std::size_t idx = 0;
    for (const auto &k : wl::kernelNames()) {
        const sim::RunResult &r = rows[idx++].result;
        const Histogram &wave = r.histogram("core.wave_depth");
        double per_1k_insts =
            1000.0 / static_cast<double>(r.committedInsts);
        printRow(k,
                 {fmtF(r.reexecFraction() * 100.0),
                  fmtF(static_cast<double>(r.resends) * per_1k_insts, 1),
                  fmtF(static_cast<double>(r.upgrades) * per_1k_insts,
                       1),
                  fmtF(static_cast<double>(r.squashes) * per_1k_insts,
                       1),
                  fmtF(static_cast<double>(r.deferrals) * per_1k_insts,
                       1),
                  fmtU(wave.approxPercentile(0.5)),
                  fmtU(wave.approxPercentile(0.9)),
                  fmtU(wave.maxValue())},
                 10);
    }
    return finishBench("bench_fig8_reexec", args, rows);
}
