/**
 * @file
 * Table 1: the simulated machine's parameters, in the style of the
 * configuration table every TRIPS-era evaluation section opens with.
 * Values are the defaults every other experiment runs with unless a
 * sweep says otherwise.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace edge;

int
main(int argc, char **argv)
{
    // No simulations here, but accept the common bench flags so the
    // harness can pass a uniform command line to every binary.
    (void)bench::benchArgs(argc, argv, 0);
    core::MachineConfig cfg = sim::Configs::dsre();
    const auto &c = cfg.core;
    const auto &m = cfg.mem;

    std::printf("Table 1: simulated EDGE (TRIPS-like) core parameters\n");
    std::printf("----------------------------------------------------\n");
    std::printf("%-28s %u x %u grid, %u RS slots/node/frame\n",
                "Execution substrate", c.rows, c.cols, c.slotsPerNode);
    std::printf("%-28s %u frames (window %u instructions)\n",
                "Speculation depth", c.numFrames,
                c.numFrames * isa::kMaxBlockInsts);
    std::printf("%-28s up to %u insts, %u loads/stores, %u reg "
                "reads/writes\n",
                "Block (hyperblock)", isa::kMaxBlockInsts,
                isa::kMaxBlockMemOps, isa::kMaxBlockReads);
    std::printf("%-28s %u cycle/hop, X-Y routed, 1 msg/link/cycle; "
                "separate status (commit-wave) network\n",
                "Operand network", c.hopLatency);
    std::printf("%-28s %u insts/cycle, one block at a time\n",
                "Fetch / map", c.fetchWidth);
    std::printf("%-28s int %u / mul %u / div %u / fp %u / fdiv %u "
                "cycles\n",
                "Execution latencies", c.latIntAlu, c.latIntMul,
                c.latIntDiv, c.latFpAlu, c.latFpDiv);
    std::printf("%-28s %u banks x %zu KB, %u-way, %u-cycle hit, "
                "%u MSHRs\n",
                "L1 D-cache", m.numDBanks, m.l1dSizeBytes / 1024,
                m.l1dAssoc, m.l1dHitLatency, m.l1dMshrs);
    std::printf("%-28s %zu KB, %u-way, %u-cycle hit\n", "L1 I-cache",
                m.l1iSizeBytes / 1024, m.l1iAssoc, m.l1iHitLatency);
    std::printf("%-28s %zu KB, %u-way, %u-cycle hit, %u banks\n",
                "L2 cache", m.l2SizeBytes / 1024, m.l2Assoc,
                m.l2HitLatency, m.l2Banks);
    std::printf("%-28s %u cycles, %u cycles/line channel\n",
                "Main memory", m.dramLatency, m.dramCyclesPerLine);
    std::printf("%-28s gshare-style exit predictor, %zu entries, "
                "%u history bits\n",
                "Next-block predictor", cfg.nbp.tableSize,
                cfg.nbp.historyBits);
    std::printf("%-28s SSIT 16384 / LFST 1024 (store sets)\n",
                "Dependence predictor");
    std::printf("%-28s 1 block/cycle, in order, block-atomic\n",
                "Commit");
    std::printf("%-28s resend budget %u per load, value-identity "
                "squash %s, %u commit ports/node\n",
                "DSRE protocol", cfg.lsq.maxResendsPerLoad,
                c.squashIdenticalValues ? "on" : "off",
                c.commitPortsPerNode);
    return 0;
}
