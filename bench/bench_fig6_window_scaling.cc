/**
 * @file
 * Figure 6: scalability with window size — the abstract's central
 * architectural claim ("scaling to window sizes of thousands of
 * instructions with high performance"). IPC as the number of frames
 * grows from 1 (a single 128-instruction block, no speculation
 * across blocks) to 16 (a 2048-instruction window), for the flush
 * baselines and DSRE. Flush recovery throws away ever more work as
 * the window deepens; DSRE keeps scaling.
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"
#include "common/strutil.hh"

using namespace edge;
using namespace edge::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = benchArgs(argc, argv, 1500);
    const std::vector<unsigned> frames = {1, 2, 4, 8, 16};
    const std::vector<std::string> configs = {
        "blind-flush", "storesets-flush", "dsre", "oracle"};
    const std::vector<std::string> kernels = {"bzip2ish", "vprish",
                                              "parserish", "twolfish"};

    // One run per (kernel, config, frames); reused for the geomean.
    std::vector<RunSpec> specs;
    for (const auto &k : kernels) {
        for (const auto &c : configs) {
            for (unsigned f : frames) {
                RunSpec spec;
                spec.kernel = k;
                spec.config = c;
                spec.iterations = args.iterations;
                spec.tweak = [f](core::MachineConfig &cfg) {
                    cfg.core.numFrames = f;
                };
                specs.push_back(std::move(spec));
            }
        }
    }
    std::vector<RunRow> rows = runSpecs(specs, args, "bench_fig6_window_scaling");

    std::map<std::tuple<std::string, std::string, unsigned>, double>
        ipc;
    std::size_t idx = 0;
    for (const auto &k : kernels)
        for (const auto &c : configs)
            for (unsigned f : frames)
                ipc[{k, c, f}] = rows[idx++].result.ipc();

    std::printf("Figure 6: IPC vs window size (frames x 128 insts)\n");
    std::vector<std::string> cols;
    for (unsigned f : frames)
        cols.push_back(strfmt("%u blk", f));
    for (const auto &k : kernels) {
        std::printf("\n[%s]\n", k.c_str());
        printHeader("mechanism", cols, 10);
        for (const auto &c : configs) {
            std::vector<std::string> cells;
            for (unsigned f : frames)
                cells.push_back(fmtF(ipc[{k, c, f}]));
            printRow(c, cells, 10);
        }
    }

    // Geomean speedup of each mechanism at each window over its own
    // 1-frame machine: the scaling curve the paper's claim is about.
    std::printf("\n[geomean speedup over the 1-frame machine]\n");
    printHeader("mechanism", cols, 10);
    for (const auto &c : configs) {
        std::vector<std::string> cells;
        for (unsigned f : frames) {
            std::vector<double> ratios;
            for (const auto &k : kernels)
                ratios.push_back(ipc[{k, c, f}] / ipc[{k, c, 1}]);
            cells.push_back(fmtF(geomean(ratios)));
        }
        printRow(c, cells, 10);
    }
    return finishBench("bench_fig6_window_scaling", args, rows);
}
