/**
 * @file
 * Figure 9: sensitivity to memory latency. As L2 and DRAM latencies
 * grow, unresolved-store windows widen, misspeculation gets more
 * frequent, and a full-window flush throws away more work — so the
 * DSRE-over-flush gap should widen with latency. Reports IPC for
 * store-sets+flush and DSRE across a latency sweep, plus the ratio.
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"
#include "common/strutil.hh"

using namespace edge;
using namespace edge::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = benchArgs(argc, argv, 1500);
    struct Point
    {
        unsigned l2;
        unsigned dram;
    };
    const std::vector<Point> points = {
        {8, 60}, {12, 100}, {18, 200}, {24, 300}};
    const std::vector<std::string> kernels = {"bzip2ish", "gzipish",
                                              "vprish", "ammpish"};

    // One run per (kernel, mechanism, point); reused for the ratio.
    const std::vector<std::string> configs = {"storesets-flush",
                                              "dsre"};
    std::vector<RunSpec> specs;
    for (const auto &k : kernels) {
        for (const auto &c : configs) {
            for (std::size_t pi = 0; pi < points.size(); ++pi) {
                Point p = points[pi];
                RunSpec spec;
                spec.kernel = k;
                spec.config = c;
                spec.iterations = args.iterations;
                spec.tweak = [p](core::MachineConfig &cfg) {
                    cfg.mem.l2HitLatency = p.l2;
                    cfg.mem.dramLatency = p.dram;
                };
                specs.push_back(std::move(spec));
            }
        }
    }
    std::vector<RunRow> rows = runSpecs(specs, args, "bench_fig9_latency");

    std::map<std::tuple<std::string, std::string, unsigned>, double>
        ipc;
    std::size_t idx = 0;
    for (const auto &k : kernels)
        for (const auto &c : configs)
            for (unsigned pi = 0; pi < points.size(); ++pi)
                ipc[{k, c, pi}] = rows[idx++].result.ipc();

    std::printf("Figure 9: IPC vs memory latency (L2/DRAM cycles)\n");
    std::vector<std::string> cols;
    for (const Point &p : points)
        cols.push_back(strfmt("%u/%u", p.l2, p.dram));
    for (const auto &k : kernels) {
        std::printf("\n[%s]\n", k.c_str());
        printHeader("mechanism", cols, 10);
        for (const auto &c : configs) {
            std::vector<std::string> cells;
            for (unsigned pi = 0; pi < points.size(); ++pi)
                cells.push_back(fmtF(ipc[{k, c, pi}]));
            printRow(c, cells, 10);
        }
    }

    std::printf("\n[geomean DSRE speedup over store-sets+flush]\n");
    printHeader("", cols, 10);
    std::vector<std::string> cells;
    for (unsigned pi = 0; pi < points.size(); ++pi) {
        std::vector<double> ratios;
        for (const auto &k : kernels)
            ratios.push_back(ipc[{k, "dsre", pi}] /
                             ipc[{k, "storesets-flush", pi}]);
        cells.push_back(fmtF(geomean(ratios)));
    }
    printRow("speedup", cells, 10);
    return finishBench("bench_fig9_latency", args, rows);
}
