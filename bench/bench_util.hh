/**
 * @file
 * Shared harness for the paper-reproduction benches: run a kernel
 * under a machine configuration, collect the metrics the paper's
 * tables and figures report, and print aligned tables. Each bench
 * binary regenerates one table or figure (see DESIGN.md's
 * per-experiment index).
 *
 * Grids (runSpecs / runMatrix) execute on a sim::RunPool: every cell
 * is an independent deterministic run, the per-kernel reference
 * execution is computed once and shared read-only, and results come
 * back in submission order — so `-j N` changes wall-clock only,
 * never a single printed digit. Failing cells (timeout, divergence,
 * structured SimError) no longer kill the binary: they are reported
 * at the end by finishBench(), which also emits the optional
 * `--json` metrics file and the exit status.
 */

#ifndef EDGE_BENCH_BENCH_UTIL_HH
#define EDGE_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace edge::bench {

/** Tweak hook applied to a config before the run (sweeps). */
using ConfigTweak = std::function<void(core::MachineConfig &)>;

struct RunSpec
{
    std::string kernel;
    std::string config; ///< one of sim::Configs::allNames()
    std::uint64_t iterations = 2000;
    std::uint64_t seed = 1;
    ConfigTweak tweak; ///< optional
    Cycle maxCycles = 500'000'000; ///< watchdog per cell
};

struct RunRow
{
    RunSpec spec;
    sim::RunResult result;
    /** Path of this cell's captured .repro.json ("" when none). */
    std::string reproPath;

    /** Did the cell finish and match the reference cleanly? */
    bool
    ok() const
    {
        return result.halted && result.archMatch && result.error.ok();
    }

    /**
     * A failing cell is either QUARANTINED — a deterministic failure
     * (invariant violation, watchdog, livelock, panic, divergence)
     * that replays from its repro file and must be triaged, not
     * retried — or FATAL: a host-level transient (wall-clock
     * deadline) that still failed after every retry the policy
     * allowed, i.e. the host could not complete the cell at all.
     */
    bool
    quarantined() const
    {
        return !ok() && !chaos::isTransient(result.error.reason);
    }

    bool
    fatalTransient() const
    {
        return !ok() && chaos::isTransient(result.error.reason);
    }

    /** One-line description of a failing cell ("" when ok()). */
    std::string failure() const;
};

/**
 * Command-line contract shared by every bench binary:
 *   bench_xxx [iterations] [-j N] [--json <path>] [--repro-dir <dir>]
 *             [--isolate] [--journal-dir <dir>] [--resume <journal>]
 *             [--cell-timeout-ms N]
 * A bare number is the iteration count; `-j 0` (the default) means
 * all hardware threads.
 */
struct BenchArgs
{
    std::uint64_t iterations = 2000;
    unsigned threads = 0;     ///< -j; 0 = hardware_concurrency
    std::string jsonPath;     ///< --json; empty = no JSON output
    /**
     * Directory for .repro.json captures of failing cells
     * (--repro-dir, falling back to $EDGE_REPRO_DIR; empty disables
     * capture).
     */
    std::string reproDir;
    /**
     * Supervised-campaign controls (see src/super/): run every grid
     * cell in a sandboxed child process, journal completed cells,
     * resume an interrupted grid. --journal-dir and --resume imply
     * --isolate. Results are byte-identical to the in-process grid.
     */
    bool isolate = false;        ///< --isolate
    std::string journalDir;      ///< --journal-dir
    std::string resumePath;      ///< --resume <journal>
    std::uint64_t cellTimeoutMs = 0; ///< --cell-timeout-ms
    /**
     * Campaign-fabric pass-through (--agents <port>, implies
     * --isolate): the bench hosts a serve::Fabric coordinator on this
     * port and leases grid cells to any `edgesim serve --agent`
     * executors that connect; with none connected the grid degrades
     * to the local fork/exec supervisor. Results are byte-identical
     * either way. 0 = plain local --isolate.
     */
    std::uint16_t agentsPort = 0;
    bool agents = false;         ///< --agents was given (port may be 0)
    /**
     * Cycle-loop engine the bench should run (--engine). "tick" or
     * "event" select one; bench_throughput also accepts "both" and
     * then measures the tick/event speedup per cell.
     */
    std::string engine = "event";
    /**
     * Baseline JSON to diff against (--baseline; bench_throughput):
     * prints per-cell current/baseline ratios and fails the run when
     * the geomean throughput regresses more than maxRegressPct.
     */
    std::string baselinePath;
    double maxRegressPct = 25.0; ///< --max-regress <pct>
    std::chrono::steady_clock::time_point start; ///< harness start
};

/** Parse argv (fatal on unknown flags); starts the wall clock. */
BenchArgs benchArgs(int argc, char **argv,
                    std::uint64_t default_iters = 2000);

/**
 * Run one spec serially. Never fatal: a timeout, divergence, or
 * structured error comes back in the row (check ok()).
 */
RunRow runOne(const RunSpec &spec);

/**
 * Run an arbitrary list of specs on the thread pool; row i
 * corresponds to specs[i]. Specs naming the same
 * (kernel, iterations, seed) share one reference execution.
 */
std::vector<RunRow> runSpecs(const std::vector<RunSpec> &specs,
                             unsigned threads = 0);

/**
 * The args-aware grid entry every bench binary calls: in-process on
 * the thread pool by default, or — under --isolate — each cell in a
 * sandboxed worker process with journal/resume support, keyed by
 * `bench_name`. An interrupted supervised grid prints the partial
 * tally plus a resume hint and exits 128+signal.
 */
std::vector<RunRow> runSpecs(const std::vector<RunSpec> &specs,
                             const BenchArgs &args,
                             const std::string &bench_name);

/** Run the cross product of kernels x configs (kernel-major). */
std::vector<RunRow> runMatrix(const std::vector<std::string> &kernels,
                              const std::vector<std::string> &configs,
                              std::uint64_t iterations,
                              const ConfigTweak &tweak = nullptr,
                              unsigned threads = 0);

/** Args-aware runMatrix (see the runSpecs overload above). */
std::vector<RunRow> runMatrix(const std::vector<std::string> &kernels,
                              const std::vector<std::string> &configs,
                              std::uint64_t iterations,
                              const ConfigTweak &tweak,
                              const BenchArgs &args,
                              const std::string &bench_name);

/**
 * End-of-bench bookkeeping: capture a .repro.json for every failing
 * cell (when args.reproDir is set, filling each row's reproPath),
 * print every failing cell with its "to reproduce: edgesim --replay
 * ..." line, summarize quarantined (deterministic) vs fatal
 * (transient-exhausted) failures separately, write the `--json`
 * metrics file (per-cell metrics + repro path + retry count +
 * harness wall-clock) when requested, and return the process exit
 * code (0 iff no failures).
 */
int finishBench(const std::string &bench_name, const BenchArgs &args,
                std::vector<RunRow> &rows);

/** Geometric mean (values must be positive). */
double geomean(const std::vector<double> &values);

/** Print one aligned table row ("name | v0 v1 v2 ..."). */
void printRow(const std::string &name,
              const std::vector<std::string> &cells, unsigned width = 12);

/** Print a table header + separator. */
void printHeader(const std::string &name,
                 const std::vector<std::string> &cols,
                 unsigned width = 12);

/** Format helpers. */
std::string fmtF(double v, int prec = 2);
std::string fmtU(std::uint64_t v);

} // namespace edge::bench

#endif // EDGE_BENCH_BENCH_UTIL_HH
