/**
 * @file
 * Shared harness for the paper-reproduction benches: run a kernel
 * under a machine configuration, collect the metrics the paper's
 * tables and figures report, and print aligned tables. Each bench
 * binary regenerates one table or figure (see DESIGN.md's
 * per-experiment index).
 */

#ifndef EDGE_BENCH_BENCH_UTIL_HH
#define EDGE_BENCH_BENCH_UTIL_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace edge::bench {

/** Tweak hook applied to a config before the run (sweeps). */
using ConfigTweak = std::function<void(core::MachineConfig &)>;

struct RunSpec
{
    std::string kernel;
    std::string config; ///< one of sim::Configs::allNames()
    std::uint64_t iterations = 2000;
    std::uint64_t seed = 1;
    ConfigTweak tweak; ///< optional
};

struct RunRow
{
    RunSpec spec;
    sim::RunResult result;
};

/** Run one spec (fatal on timeout or architectural divergence). */
RunRow runOne(const RunSpec &spec);

/** Run the cross product of kernels x configs. */
std::vector<RunRow> runMatrix(const std::vector<std::string> &kernels,
                              const std::vector<std::string> &configs,
                              std::uint64_t iterations,
                              const ConfigTweak &tweak = nullptr);

/** Geometric mean (values must be positive). */
double geomean(const std::vector<double> &values);

/** Print one aligned table row ("name | v0 v1 v2 ..."). */
void printRow(const std::string &name,
              const std::vector<std::string> &cells, unsigned width = 12);

/** Print a table header + separator. */
void printHeader(const std::string &name,
                 const std::vector<std::string> &cols,
                 unsigned width = 12);

/** Format helpers. */
std::string fmtF(double v, int prec = 2);
std::string fmtU(std::uint64_t v);

} // namespace edge::bench

#endif // EDGE_BENCH_BENCH_UTIL_HH
