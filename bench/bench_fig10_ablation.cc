/**
 * @file
 * Figure 10: ablation of the DSRE design choices DESIGN.md calls
 * out. Each row disables or re-prices one mechanism and reports the
 * geomean IPC across the aliasing-heavy kernels, normalised to the
 * default DSRE machine:
 *
 *  - value-identity squash off (every re-fire re-sends);
 *  - commit wave through the ALUs (no dedicated commit ports);
 *  - commit-wave replies charged full LSQ bank ports;
 *  - resend budget 1 / 16 / unlimited (storm throttle off);
 *  - 1 vs 4 commit ports per node.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace edge;
using namespace edge::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = benchArgs(argc, argv, 1500);
    const std::vector<std::string> kernels = {
        "gzipish", "bzip2ish", "parserish", "twolfish", "vprish",
        "ammpish"};

    struct Variant
    {
        const char *name;
        ConfigTweak tweak;
    };
    const std::vector<Variant> variants = {
        {"default DSRE", nullptr},
        {"no value squash",
         [](core::MachineConfig &c) {
             c.core.squashIdenticalValues = false;
         }},
        {"commit on ALU",
         [](core::MachineConfig &c) { c.core.commitWaveUsesAlu = true; }},
        {"upgr take port",
         [](core::MachineConfig &c) {
             c.lsq.chargeUpgradePorts = true;
         }},
        {"budget 1",
         [](core::MachineConfig &c) { c.lsq.maxResendsPerLoad = 1; }},
        {"budget 16",
         [](core::MachineConfig &c) { c.lsq.maxResendsPerLoad = 16; }},
        {"budget 64",
         [](core::MachineConfig &c) { c.lsq.maxResendsPerLoad = 64; }},
        {"1 commit port",
         [](core::MachineConfig &c) { c.core.commitPortsPerNode = 1; }},
        {"4 commit ports",
         [](core::MachineConfig &c) { c.core.commitPortsPerNode = 4; }},
    };

    std::printf("Figure 10: DSRE design-choice ablations "
                "(geomean IPC over %zu kernels, normalised to "
                "default DSRE)\n\n",
                kernels.size());
    printHeader("variant", {"relIPC", "resend/1k", "upgr/1k"}, 12);

    std::vector<RunSpec> specs;
    for (const Variant &v : variants) {
        for (const auto &k : kernels) {
            RunSpec spec;
            spec.kernel = k;
            spec.config = "dsre";
            spec.iterations = args.iterations;
            spec.tweak = v.tweak;
            specs.push_back(std::move(spec));
        }
    }
    std::vector<RunRow> rows = runSpecs(specs, args, "bench_fig10_ablation");

    double base_ipc = 0.0;
    std::size_t idx = 0;
    for (const Variant &v : variants) {
        std::vector<double> ipcs;
        std::uint64_t resends = 0, upgrades = 0, insts = 0;
        for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
            const RunRow &row = rows[idx++];
            ipcs.push_back(row.result.ipc());
            resends += row.result.resends;
            upgrades += row.result.upgrades;
            insts += row.result.committedInsts;
        }
        double gm = geomean(ipcs);
        if (base_ipc == 0.0)
            base_ipc = gm;
        printRow(v.name,
                 {fmtF(gm / base_ipc, 3),
                  fmtF(1000.0 * static_cast<double>(resends) /
                       static_cast<double>(insts), 2),
                  fmtF(1000.0 * static_cast<double>(upgrades) /
                       static_cast<double>(insts), 2)},
                 12);
    }
    return finishBench("bench_fig10_ablation", args, rows);
}
