/**
 * @file
 * Figure 5 (headline result): performance of the recovery/policy
 * mechanisms across the workload suite, normalised to the
 * conservative (never-speculate) baseline, with the perfect oracle
 * as the upper bound.
 *
 * Paper claims reproduced here (abstract):
 *  - DSRE achieves an average 17% speedup over the best dependence
 *    predictor proposed to date (store sets with flush recovery);
 *  - DSRE reaches 82% of the performance of a perfect oracle
 *    directing the issue of loads.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace edge;
using namespace edge::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = benchArgs(argc, argv, 2000);
    const auto kernels = wl::kernelNames();
    const auto configs = sim::Configs::allNames();

    std::printf("Figure 5: speedup over the conservative baseline "
                "(8-frame / 1024-entry window)\n\n");

    std::vector<std::string> cols = {"IPC(cons)"};
    for (const auto &c : configs)
        if (c != "conservative")
            cols.push_back(c);
    printHeader("benchmark", cols);

    // The whole kernel x mechanism grid runs on the pool; rows come
    // back kernel-major in submission order.
    std::vector<RunRow> rows =
        runMatrix(kernels, configs, args.iterations, nullptr, args,
                  "bench_fig5_speedup");

    std::map<std::string, std::vector<double>> speedups;
    std::vector<double> dsre_vs_ss, dsre_vs_oracle;

    std::size_t idx = 0;
    for (const auto &k : kernels) {
        std::map<std::string, double> ipc;
        for (const auto &c : configs)
            ipc[c] = rows[idx++].result.ipc();
        std::vector<std::string> cells = {fmtF(ipc["conservative"])};
        for (const auto &c : configs) {
            if (c == "conservative")
                continue;
            double s = ipc[c] / ipc["conservative"];
            speedups[c].push_back(s);
            cells.push_back(fmtF(s));
        }
        printRow(k, cells);
        dsre_vs_ss.push_back(ipc["dsre"] / ipc["storesets-flush"]);
        dsre_vs_oracle.push_back(ipc["dsre"] / ipc["oracle"]);
    }

    std::vector<std::string> gm_cells = {"-"};
    for (const auto &c : configs)
        if (c != "conservative")
            gm_cells.push_back(fmtF(geomean(speedups[c])));
    std::printf("\n");
    printRow("geomean", gm_cells);

    std::printf("\nHeadline comparisons (geomean across suite):\n");
    std::printf("  DSRE vs store-sets+flush : %+5.1f%%  "
                "(paper: +17%% average)\n",
                (geomean(dsre_vs_ss) - 1.0) * 100.0);
    std::printf("  DSRE as fraction of oracle: %5.1f%%  "
                "(paper: 82%%)\n",
                geomean(dsre_vs_oracle) * 100.0);
    return finishBench("bench_fig5_speedup", args, rows);
}
