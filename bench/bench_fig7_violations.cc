/**
 * @file
 * Figure 7: misspeculation behaviour by mechanism — dependence
 * violations per 1000 committed blocks, violation-induced flushes,
 * and loads held back by the active policy. Shows where each
 * mechanism sits on the speculate/serialise spectrum: blind
 * violates, store sets trades violations for holds, the oracle
 * holds exactly the true conflicts, and DSRE turns violations into
 * cheap resends.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace edge;
using namespace edge::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = benchArgs(argc, argv, 2000);
    const auto configs = sim::Configs::allNames();

    std::printf("Figure 7: violations / violation flushes / resends / "
                "policy holds, per 1000 committed blocks\n\n");

    struct Metric
    {
        const char *name;
        std::uint64_t (*get)(const sim::RunResult &);
    };
    const Metric metrics[] = {
        {"violations",
         [](const sim::RunResult &r) { return r.violations; }},
        {"violation flushes",
         [](const sim::RunResult &r) { return r.violFlushes; }},
        {"DSRE resends",
         [](const sim::RunResult &r) { return r.resends; }},
        {"policy holds",
         [](const sim::RunResult &r) { return r.policyHolds; }},
    };

    // One run per (kernel, config); reuse across the metric tables.
    std::vector<RunRow> rows = runMatrix(wl::kernelNames(), configs,
                                         args.iterations, nullptr,
                                         args, "bench_fig7_violations");

    for (const Metric &m : metrics) {
        std::printf("[%s]\n", m.name);
        std::vector<std::string> cols(configs.begin(), configs.end());
        printHeader("benchmark", cols, 12);
        std::size_t idx = 0;
        for (const auto &k : wl::kernelNames()) {
            std::vector<std::string> cells;
            for (std::size_t c = 0; c < configs.size(); ++c, ++idx) {
                const sim::RunResult &r = rows[idx].result;
                cells.push_back(fmtF(
                    1000.0 * static_cast<double>(m.get(r)) /
                        static_cast<double>(r.committedBlocks),
                    1));
            }
            printRow(k, cells, 12);
        }
        std::printf("\n");
    }
    return finishBench("bench_fig7_violations", args, rows);
}
