/**
 * @file
 * Figure 11: operand-network sensitivity. DSRE's waves are extra
 * network traffic, so its advantage could erode on a slower
 * network; this sweep varies the per-hop latency of both networks
 * and reports IPC for store-sets+flush and DSRE plus the speedup.
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"
#include "common/strutil.hh"

using namespace edge;
using namespace edge::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = benchArgs(argc, argv, 1500);
    const std::vector<unsigned> hops = {1, 2, 3};
    const std::vector<std::string> kernels = {"gzipish", "bzip2ish",
                                              "vprish", "equakeish"};

    const std::vector<std::string> configs = {"storesets-flush",
                                              "dsre"};
    std::vector<RunSpec> specs;
    for (const auto &k : kernels) {
        for (const auto &c : configs) {
            for (unsigned h : hops) {
                RunSpec spec;
                spec.kernel = k;
                spec.config = c;
                spec.iterations = args.iterations;
                spec.tweak = [h](core::MachineConfig &cfg) {
                    cfg.core.hopLatency = h;
                };
                specs.push_back(std::move(spec));
            }
        }
    }
    std::vector<RunRow> rows = runSpecs(specs, args, "bench_fig11_network");

    std::map<std::tuple<std::string, std::string, unsigned>, double>
        ipc;
    std::size_t idx = 0;
    for (const auto &k : kernels)
        for (const auto &c : configs)
            for (unsigned h : hops)
                ipc[{k, c, h}] = rows[idx++].result.ipc();

    std::printf("Figure 11: IPC vs operand-network hop latency\n");
    std::vector<std::string> cols;
    for (unsigned h : hops)
        cols.push_back(strfmt("%u cyc/hop", h));
    for (const auto &k : kernels) {
        std::printf("\n[%s]\n", k.c_str());
        printHeader("mechanism", cols, 12);
        for (const auto &c : configs) {
            std::vector<std::string> cells;
            for (unsigned h : hops)
                cells.push_back(fmtF(ipc[{k, c, h}]));
            printRow(c, cells, 12);
        }
    }

    std::printf("\n[geomean DSRE speedup over store-sets+flush]\n");
    printHeader("", cols, 12);
    std::vector<std::string> cells;
    for (unsigned h : hops) {
        std::vector<double> ratios;
        for (const auto &k : kernels)
            ratios.push_back(ipc[{k, "dsre", h}] /
                             ipc[{k, "storesets-flush", h}]);
        cells.push_back(fmtF(geomean(ratios)));
    }
    printRow("speedup", cells, 12);
    return finishBench("bench_fig11_network", args, rows);
}
