/**
 * @file
 * Campaign-throughput baseline (ROADMAP "make it fast"): how many
 * grid cells per second the simulator sustains, per kernel x
 * mechanism, plus the pooled whole-suite rate. Emits
 * BENCH_throughput.json (override with --json) so CI archives a
 * trajectory for the cycle-loop optimisation work to beat.
 *
 * Two measurements per kernel x config cell:
 *  - serial cells/sec: best-of-N wall time of a single in-process
 *    run (the per-cell cost a scheduler pays);
 *  - simulated Mcycles/sec for the same run (the cycle-loop rate the
 *    optimisation PRs target directly).
 * Then the whole matrix once more through the -j thread pool for the
 * aggregate suite cells/sec.
 *
 * --engine tick|event|both selects the cycle engine; `both` measures
 * each cell under both engines, checks they agree cycle-for-cycle,
 * and prints the per-cell event/tick speedup.
 *
 * --baseline <json> diffs against a previously committed run of this
 * bench: per-cell throughput ratios plus a gate — the run exits 3
 * when the geomean regresses more than --max-regress percent
 * (default 25). When the baseline was recorded on a different CPU
 * model the absolute rates are not comparable; the gate then falls
 * back to the engine-normalised speedup ratio (event/tick on each
 * host) when both files carry tick numbers, and is skipped with a
 * loud warning otherwise.
 *
 * Timings are wall-clock and hence machine-dependent; everything
 * else in the JSON (cycles, insts) is deterministic.
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "bench/bench_util.hh"
#include "common/hostinfo.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "log/result_log.hh"
#include "triage/jsonio.hh"
#include "triage/result_json.hh"

using namespace edge;
using namespace edge::bench;

namespace {

constexpr int kReps = 3; ///< best-of-N serial timing

struct CellRate
{
    RunSpec spec;
    sim::RunResult result;
    double cellsPerSec = 0.0;     ///< under the primary engine
    double mcyclesPerSec = 0.0;
    double tickCellsPerSec = 0.0; ///< --engine both only
    bool enginesAgree = true;     ///< --engine both only
    std::vector<double> latMs;    ///< per-rep wall latency samples
};

double
secondsOf(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

ConfigTweak
engineTweak(const std::string &engine)
{
    core::EngineKind kind = core::engineByName(engine);
    return [kind](core::MachineConfig &cfg) { cfg.engine = kind; };
}

/**
 * Best-of-kReps serial cells/sec; fills *result from the first rep.
 * Every rep's wall latency (ms) is appended to *latenciesMs when
 * given — the sample set behind the p50/p95/p99 per-cell latency
 * figures (the straggler-detection threshold the serve fabric's
 * hedging derives comes from exactly this distribution).
 */
double
timeCell(const RunSpec &spec, sim::RunResult *result,
         std::vector<double> *latenciesMs = nullptr)
{
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        RunRow row = runOne(spec);
        double secs = secondsOf(std::chrono::steady_clock::now() - t0);
        if (rep == 0 && result)
            *result = std::move(row.result);
        if (secs > 0.0)
            best = std::max(best, 1.0 / secs);
        if (latenciesMs)
            latenciesMs->push_back(secs * 1e3);
    }
    return best;
}

/** Nearest-rank percentile (p in [0,100]); 0 on an empty sample. */
double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    double idx = p / 100.0 * static_cast<double>(v.size() - 1);
    std::size_t lo = static_cast<std::size_t>(idx);
    std::size_t hi = std::min(lo + 1, v.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return v[lo] + (v[hi] - v[lo]) * frac;
}

struct BaselineCell
{
    double cellsPerSec = 0.0;
    double tickCellsPerSec = 0.0;
};

struct Baseline
{
    std::string cpuModel;
    std::map<std::string, BaselineCell> cells; ///< "kernel|config"
};

bool
loadBaseline(const std::string &path, Baseline *out)
{
    std::ifstream in(path);
    if (!in) {
        warn("cannot read baseline %s", path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    triage::JsonValue root;
    std::string err;
    if (!triage::JsonValue::parse(ss.str(), &root, &err)) {
        warn("baseline %s is not valid JSON: %s", path.c_str(),
             err.c_str());
        return false;
    }
    if (const triage::JsonValue *host = root.get("host"))
        out->cpuModel = host->getString("cpu_model");
    if (const triage::JsonValue *cells = root.get("cells")) {
        for (const triage::JsonValue &c : cells->items()) {
            BaselineCell bc;
            if (const triage::JsonValue *v = c.get("cells_per_sec"))
                bc.cellsPerSec = v->asDouble();
            if (const triage::JsonValue *v =
                    c.get("tick_cells_per_sec"))
                bc.tickCellsPerSec = v->asDouble();
            out->cells.emplace(c.getString("kernel") + "|" +
                                   c.getString("config"),
                               bc);
        }
    }
    return !out->cells.empty();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/**
 * Diff the measured rates against the baseline and apply the
 * regression gate. Returns 0 (pass) or 3 (regression).
 */
int
compareBaseline(const BenchArgs &args,
                const std::vector<CellRate> &rates)
{
    Baseline base;
    if (!loadBaseline(args.baselinePath, &base))
        return 0; // unreadable baseline: report-only, never gate

    bool same_host = base.cpuModel.empty() ||
                     base.cpuModel == hostInfo().cpuModel;
    if (!same_host) {
        warn("baseline host CPU differs:\n  baseline: %s\n  current:  "
             "%s\nabsolute cells/sec are not comparable across hosts",
             base.cpuModel.c_str(), hostInfo().cpuModel.c_str());
    }

    std::printf("\nbaseline comparison (%s):\n",
                args.baselinePath.c_str());
    printHeader("cell", {"baseline", "current", "speedup"}, 12);

    std::vector<double> ratios;       ///< current / baseline rate
    std::vector<double> cur_speedups; ///< event/tick, this run
    std::vector<double> base_speedups;
    for (const CellRate &r : rates) {
        auto it =
            base.cells.find(r.spec.kernel + "|" + r.spec.config);
        if (it == base.cells.end() || it->second.cellsPerSec <= 0.0 ||
            r.cellsPerSec <= 0.0)
            continue;
        double ratio = r.cellsPerSec / it->second.cellsPerSec;
        ratios.push_back(ratio);
        printRow(r.spec.kernel + "/" + r.spec.config,
                 {fmtF(it->second.cellsPerSec, 1),
                  fmtF(r.cellsPerSec, 1), fmtF(ratio, 2) + "x"},
                 12);
        if (r.tickCellsPerSec > 0.0 &&
            it->second.tickCellsPerSec > 0.0) {
            cur_speedups.push_back(r.cellsPerSec / r.tickCellsPerSec);
            base_speedups.push_back(it->second.cellsPerSec /
                                    it->second.tickCellsPerSec);
        }
    }
    if (ratios.empty()) {
        warn("no overlapping cells between this run and the baseline; "
             "gate skipped");
        return 0;
    }

    double floor = 1.0 - args.maxRegressPct / 100.0;
    double gm = geomean(ratios);
    std::printf("\ngeomean vs baseline : %.2fx (gate: >= %.2fx)\n", gm,
                floor);

    if (same_host)
        return gm >= floor ? 0 : 3;

    // Cross-host: gate on the engine-normalised speedup when both
    // sides measured both engines, otherwise skip the gate.
    if (!cur_speedups.empty() && !base_speedups.empty()) {
        double norm = geomean(cur_speedups) / geomean(base_speedups);
        std::printf("engine-normalised speedup ratio: %.2fx "
                    "(cross-host gate: >= %.2fx)\n",
                    norm, floor);
        return norm >= floor ? 0 : 3;
    }
    warn("baseline lacks tick-engine numbers; cross-host gate skipped");
    return 0;
}

/** Journal write rates: group-commit log vs the retired per-record
 *  durable-rewrite discipline. */
struct JournalBench
{
    double recordsPerSec = 0.0;      ///< group-commit result log
    double fsyncRecordsPerSec = 0.0; ///< per-record durable rewrite
    double speedup = 0.0;
};

/**
 * Measure journal throughput with a representative record payload.
 * The baseline reimplements the PR-5 journal discipline — every
 * append rewrote the whole JSONL file durably (temp file + fsync +
 * rename + directory fsync) — time-boxed to ~0.4s. The group-commit
 * side appends the same payload from 4 producer threads and gates on
 * flush(), so both sides end fully durable.
 */
JournalBench
journalBench(const std::string &payload)
{
    namespace fs = std::filesystem;
    using std::chrono::steady_clock;
    JournalBench out;
    fs::path dir =
        fs::temp_directory_path() /
        ("edgesim_bench_journal_" + std::to_string(::getpid()));
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("journal bench: cannot create %s", dir.string().c_str());
        return out;
    }

    {
        std::string file = (dir / "fsync.journal.jsonl").string();
        std::string content =
            "{\"format\":\"edgesim-journal\",\"version\":1}\n";
        auto t0 = steady_clock::now();
        std::uint64_t n = 0;
        while (secondsOf(steady_clock::now() - t0) < 0.4) {
            content += payload;
            content += '\n';
            if (!triage::writeFileDurable(file, content, nullptr))
                break;
            ++n;
        }
        double secs = secondsOf(steady_clock::now() - t0);
        out.fsyncRecordsPerSec =
            secs > 0.0 ? static_cast<double>(n) / secs : 0.0;
    }

    {
        log::ResultLog lg;
        std::string err;
        if (!lg.open((dir / "group.journal").string(), "bench",
                     log::LogOptions{}, 1, &err)) {
            warn("journal bench: %s", err.c_str());
        } else {
            constexpr unsigned kProducers = 4;
            constexpr std::uint64_t kPer = 2000;
            auto t0 = steady_clock::now();
            std::vector<std::thread> producers;
            for (unsigned t = 0; t < kProducers; ++t)
                producers.emplace_back([&lg, &payload, t] {
                    for (std::uint64_t i = 0; i < kPer; ++i)
                        lg.append(t * kPer + i, payload);
                });
            for (std::thread &t : producers)
                t.join();
            lg.flush();
            double secs = secondsOf(steady_clock::now() - t0);
            out.recordsPerSec =
                secs > 0.0
                    ? static_cast<double>(kProducers * kPer) / secs
                    : 0.0;
            lg.close();
        }
    }

    fs::remove_all(dir, ec);
    out.speedup = out.fsyncRecordsPerSec > 0.0
                      ? out.recordsPerSec / out.fsyncRecordsPerSec
                      : 0.0;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = benchArgs(argc, argv, 1000);
    const auto kernels = wl::kernelNames();
    const auto configs = sim::Configs::allNames();

    const bool both = args.engine == "both";
    const std::string primary = args.engine == "tick" ? "tick" : "event";
    const ConfigTweak primary_tweak = engineTweak(primary);
    const ConfigTweak tick_tweak = engineTweak("tick");

    std::printf("Campaign throughput: serial cells/sec per kernel x "
                "mechanism (engine %s, best of %d, %llu iterations)\n\n",
                args.engine.c_str(), kReps,
                static_cast<unsigned long long>(args.iterations));
    std::vector<std::string> cols = configs;
    if (both)
        cols.push_back("(speedup)");
    printHeader("benchmark", cols, 14);

    std::vector<CellRate> rates;
    rates.reserve(kernels.size() * configs.size());
    std::size_t mismatches = 0;
    for (const auto &k : kernels) {
        std::vector<std::string> cells;
        std::vector<double> row_speedups;
        for (const auto &c : configs) {
            RunSpec spec;
            spec.kernel = k;
            spec.config = c;
            spec.iterations = args.iterations;
            spec.tweak = primary_tweak;

            CellRate rate;
            rate.spec = spec;
            rate.cellsPerSec =
                timeCell(spec, &rate.result, &rate.latMs);
            rate.mcyclesPerSec =
                rate.cellsPerSec *
                static_cast<double>(rate.result.cycles) / 1e6;
            if (both) {
                RunSpec tick_spec = spec;
                tick_spec.tweak = tick_tweak;
                sim::RunResult tick_res;
                rate.tickCellsPerSec = timeCell(tick_spec, &tick_res);
                // The differential test proves full bit-identity;
                // this is a cheap cross-check that the measurement
                // itself compared like with like.
                rate.enginesAgree =
                    tick_res.cycles == rate.result.cycles &&
                    tick_res.committedInsts ==
                        rate.result.committedInsts;
                if (!rate.enginesAgree) {
                    ++mismatches;
                    warn("%s/%s: engines disagree (tick %llu cycles, "
                         "%s %llu cycles)",
                         k.c_str(), c.c_str(),
                         static_cast<unsigned long long>(
                             tick_res.cycles),
                         primary.c_str(),
                         static_cast<unsigned long long>(
                             rate.result.cycles));
                }
                if (rate.tickCellsPerSec > 0.0)
                    row_speedups.push_back(rate.cellsPerSec /
                                           rate.tickCellsPerSec);
            }
            cells.push_back(fmtF(rate.cellsPerSec, 1));
            rates.push_back(std::move(rate));
        }
        if (both)
            cells.push_back(row_speedups.empty()
                                ? "-"
                                : fmtF(geomean(row_speedups), 2) + "x");
        printRow(k, cells, 14);
    }

    std::vector<double> per_cell;
    std::vector<double> all_lat_ms;
    for (const auto &r : rates) {
        per_cell.push_back(r.cellsPerSec > 0.0 ? r.cellsPerSec : 1e-9);
        all_lat_ms.insert(all_lat_ms.end(), r.latMs.begin(),
                          r.latMs.end());
    }
    double gm = geomean(per_cell);
    // Per-cell latency distribution across the whole matrix: the
    // numbers a straggler-hedging threshold (serve --hedge-after-ms,
    // auto mode = 2 x observed p95) should be read against.
    double lat_p50 = percentile(all_lat_ms, 50.0);
    double lat_p95 = percentile(all_lat_ms, 95.0);
    double lat_p99 = percentile(all_lat_ms, 99.0);

    double tick_gm = 0.0;
    if (both) {
        std::vector<double> tick_cells;
        for (const auto &r : rates)
            tick_cells.push_back(
                r.tickCellsPerSec > 0.0 ? r.tickCellsPerSec : 1e-9);
        tick_gm = geomean(tick_cells);
    }

    // The pooled pass: the whole matrix at -j, the rate a campaign
    // actually sustains on this host (primary engine).
    auto t0 = std::chrono::steady_clock::now();
    std::vector<RunRow> pooled =
        runMatrix(kernels, configs, args.iterations, primary_tweak,
                  args.threads);
    double pooled_secs =
        secondsOf(std::chrono::steady_clock::now() - t0);
    double suite_rate = pooled_secs > 0.0
                            ? static_cast<double>(pooled.size()) /
                                  pooled_secs
                            : 0.0;
    unsigned threads = args.threads == 0
                           ? ThreadPool::defaultThreads()
                           : args.threads;

    std::printf("\ngeomean serial rate : %8.1f cells/sec (%s)\n", gm,
                primary.c_str());
    std::printf("cell latency        : p50 %.1f ms, p95 %.1f ms, "
                "p99 %.1f ms (%zu samples)\n",
                lat_p50, lat_p95, lat_p99, all_lat_ms.size());
    if (both) {
        std::printf("geomean serial rate : %8.1f cells/sec (tick)\n",
                    tick_gm);
        std::printf("geomean speedup     : %8.2fx (event vs tick)\n",
                    tick_gm > 0.0 ? gm / tick_gm : 0.0);
    }
    std::printf("pooled suite rate   : %8.1f cells/sec "
                "(%zu cells, -j %u, %.2fs)\n",
                suite_rate, pooled.size(), threads, pooled_secs);

    // Journal throughput: a representative record (the first
    // measured cell's full RunResult) through the group-commit
    // result log vs the retired per-record durable rewrite.
    JournalBench jb;
    if (!rates.empty()) {
        std::string payload =
            triage::resultToJson(rates[0].result).dumpCompact();
        jb = journalBench(payload);
        std::printf("journal rate        : %8.1f records/sec "
                    "group-commit vs %.1f per-record-fsync "
                    "(%.1fx, %zu-byte records)\n",
                    jb.recordsPerSec, jb.fsyncRecordsPerSec,
                    jb.speedup, payload.size());
    }

    std::string json_path =
        args.jsonPath.empty() ? "BENCH_throughput.json" : args.jsonPath;
    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        warn("cannot write %s", json_path.c_str());
    } else {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"bench_throughput\",\n"
                     "  \"iterations\": %llu,\n"
                     "  \"threads\": %u,\n"
                     "  \"engine\": \"%s\",\n"
                     "  \"host\": %s,\n"
                     "  \"geomean_cells_per_sec\": %.3f,\n",
                     static_cast<unsigned long long>(args.iterations),
                     threads, jsonEscape(args.engine).c_str(),
                     hostInfoJson().c_str(), gm);
        if (both) {
            std::fprintf(f,
                         "  \"tick_geomean_cells_per_sec\": %.3f,\n"
                         "  \"geomean_speedup\": %.3f,\n",
                         tick_gm, tick_gm > 0.0 ? gm / tick_gm : 0.0);
        }
        std::fprintf(f,
                     "  \"cell_latency_ms_p50\": %.3f,\n"
                     "  \"cell_latency_ms_p95\": %.3f,\n"
                     "  \"cell_latency_ms_p99\": %.3f,\n",
                     lat_p50, lat_p95, lat_p99);
        std::fprintf(f,
                     "  \"suite_cells_per_sec\": %.3f,\n"
                     "  \"suite_cells\": %zu,\n"
                     "  \"suite_wall_seconds\": %.3f,\n"
                     "  \"journal_records_per_sec\": %.3f,\n"
                     "  \"journal_fsync_records_per_sec\": %.3f,\n"
                     "  \"journal_speedup\": %.3f,\n"
                     "  \"cells\": [\n",
                     suite_rate, pooled.size(), pooled_secs,
                     jb.recordsPerSec, jb.fsyncRecordsPerSec, jb.speedup);
        for (std::size_t i = 0; i < rates.size(); ++i) {
            const CellRate &r = rates[i];
            std::fprintf(
                f,
                "    {\"kernel\": \"%s\", \"config\": \"%s\", "
                "\"cells_per_sec\": %.3f, "
                "\"sim_mcycles_per_sec\": %.3f, ",
                jsonEscape(r.spec.kernel).c_str(),
                jsonEscape(r.spec.config).c_str(), r.cellsPerSec,
                r.mcyclesPerSec);
            std::fprintf(f,
                         "\"lat_ms_p50\": %.3f, \"lat_ms_p95\": %.3f, "
                         "\"lat_ms_p99\": %.3f, ",
                         percentile(r.latMs, 50.0),
                         percentile(r.latMs, 95.0),
                         percentile(r.latMs, 99.0));
            if (both) {
                std::fprintf(f,
                             "\"tick_cells_per_sec\": %.3f, "
                             "\"speedup\": %.3f, ",
                             r.tickCellsPerSec,
                             r.tickCellsPerSec > 0.0
                                 ? r.cellsPerSec / r.tickCellsPerSec
                                 : 0.0);
            }
            std::fprintf(
                f,
                "\"cycles\": %llu, \"insts\": %llu, \"ok\": %s}%s\n",
                static_cast<unsigned long long>(r.result.cycles),
                static_cast<unsigned long long>(
                    r.result.committedInsts),
                r.result.halted && r.result.archMatch &&
                        r.result.error.ok() && r.enginesAgree
                    ? "true"
                    : "false",
                i + 1 < rates.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }

    int gate_rc = 0;
    if (!args.baselinePath.empty())
        gate_rc = compareBaseline(args, rates);

    // finishBench reports any failing pooled cells (and honours
    // --repro-dir); the JSON above is ours, so hide --json from it.
    BenchArgs finish = args;
    finish.jsonPath.clear();
    int rc = finishBench("bench_throughput", finish, pooled);
    if (mismatches) {
        std::fprintf(stderr,
                     "%zu cell(s) disagreed between engines\n",
                     mismatches);
        rc = rc ? rc : 1;
    }
    return rc ? rc : gate_rc;
}
