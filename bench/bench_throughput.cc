/**
 * @file
 * Campaign-throughput baseline (ROADMAP "make it fast"): how many
 * grid cells per second the simulator sustains, per kernel x
 * mechanism, plus the pooled whole-suite rate. Emits
 * BENCH_throughput.json (override with --json) so CI archives a
 * trajectory for the cycle-loop optimisation work to beat.
 *
 * Two measurements per kernel x config cell:
 *  - serial cells/sec: best-of-N wall time of a single in-process
 *    run (the per-cell cost a scheduler pays);
 *  - simulated Mcycles/sec for the same run (the cycle-loop rate the
 *    optimisation PRs target directly).
 * Then the whole matrix once more through the -j thread pool for the
 * aggregate suite cells/sec.
 *
 * Timings are wall-clock and hence machine-dependent; everything
 * else in the JSON (cycles, insts) is deterministic.
 */

#include <chrono>
#include <cstdio>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

using namespace edge;
using namespace edge::bench;

namespace {

constexpr int kReps = 3; ///< best-of-N serial timing

struct CellRate
{
    RunSpec spec;
    sim::RunResult result;
    double cellsPerSec = 0.0;
    double mcyclesPerSec = 0.0;
};

double
secondsOf(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = benchArgs(argc, argv, 1000);
    const auto kernels = wl::kernelNames();
    const auto configs = sim::Configs::allNames();

    std::printf("Campaign throughput: serial cells/sec per kernel x "
                "mechanism (best of %d, %llu iterations)\n\n",
                kReps,
                static_cast<unsigned long long>(args.iterations));
    printHeader("benchmark", configs, 14);

    std::vector<CellRate> rates;
    rates.reserve(kernels.size() * configs.size());
    for (const auto &k : kernels) {
        std::vector<std::string> cells;
        for (const auto &c : configs) {
            RunSpec spec;
            spec.kernel = k;
            spec.config = c;
            spec.iterations = args.iterations;

            CellRate rate;
            rate.spec = spec;
            double best = 0.0;
            for (int rep = 0; rep < kReps; ++rep) {
                auto t0 = std::chrono::steady_clock::now();
                RunRow row = runOne(spec);
                double secs =
                    secondsOf(std::chrono::steady_clock::now() - t0);
                if (rep == 0)
                    rate.result = std::move(row.result);
                if (secs > 0.0)
                    best = std::max(best, 1.0 / secs);
            }
            rate.cellsPerSec = best;
            rate.mcyclesPerSec =
                best * static_cast<double>(rate.result.cycles) / 1e6;
            cells.push_back(fmtF(rate.cellsPerSec, 1));
            rates.push_back(std::move(rate));
        }
        printRow(k, cells, 14);
    }

    std::vector<double> per_cell;
    for (const auto &r : rates)
        per_cell.push_back(r.cellsPerSec > 0.0 ? r.cellsPerSec : 1e-9);
    double gm = geomean(per_cell);

    // The pooled pass: the whole matrix at -j, the rate a campaign
    // actually sustains on this host.
    auto t0 = std::chrono::steady_clock::now();
    std::vector<RunRow> pooled =
        runMatrix(kernels, configs, args.iterations, nullptr,
                  args.threads);
    double pooled_secs =
        secondsOf(std::chrono::steady_clock::now() - t0);
    double suite_rate = pooled_secs > 0.0
                            ? static_cast<double>(pooled.size()) /
                                  pooled_secs
                            : 0.0;
    unsigned threads = args.threads == 0
                           ? ThreadPool::defaultThreads()
                           : args.threads;

    std::printf("\ngeomean serial rate : %8.1f cells/sec\n", gm);
    std::printf("pooled suite rate   : %8.1f cells/sec "
                "(%zu cells, -j %u, %.2fs)\n",
                suite_rate, pooled.size(), threads, pooled_secs);

    std::string json_path =
        args.jsonPath.empty() ? "BENCH_throughput.json" : args.jsonPath;
    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f) {
        warn("cannot write %s", json_path.c_str());
    } else {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"bench_throughput\",\n"
                     "  \"iterations\": %llu,\n"
                     "  \"threads\": %u,\n"
                     "  \"geomean_cells_per_sec\": %.3f,\n"
                     "  \"suite_cells_per_sec\": %.3f,\n"
                     "  \"suite_cells\": %zu,\n"
                     "  \"suite_wall_seconds\": %.3f,\n"
                     "  \"cells\": [\n",
                     static_cast<unsigned long long>(args.iterations),
                     threads, gm, suite_rate, pooled.size(),
                     pooled_secs);
        for (std::size_t i = 0; i < rates.size(); ++i) {
            const CellRate &r = rates[i];
            std::fprintf(
                f,
                "    {\"kernel\": \"%s\", \"config\": \"%s\", "
                "\"cells_per_sec\": %.3f, "
                "\"sim_mcycles_per_sec\": %.3f, "
                "\"cycles\": %llu, \"insts\": %llu, \"ok\": %s}%s\n",
                jsonEscape(r.spec.kernel).c_str(),
                jsonEscape(r.spec.config).c_str(), r.cellsPerSec,
                r.mcyclesPerSec,
                static_cast<unsigned long long>(r.result.cycles),
                static_cast<unsigned long long>(
                    r.result.committedInsts),
                r.result.halted && r.result.archMatch &&
                        r.result.error.ok()
                    ? "true"
                    : "false",
                i + 1 < rates.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }

    // finishBench reports any failing pooled cells (and honours
    // --repro-dir); the JSON above is ours, so hide --json from it.
    BenchArgs finish = args;
    finish.jsonPath.clear();
    return finishBench("bench_throughput", finish, pooled);
}
