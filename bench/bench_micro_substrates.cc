/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrates
 * themselves (host-side performance, not simulated cycles): cache
 * timestamp accesses, mesh routing and send/deliver, sparse-memory
 * traffic, block construction + placement, functional reference
 * execution, and a full end-to-end simulated kernel. These guard
 * against accidental slowdowns of the simulator.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "compiler/placement.hh"
#include "compiler/ref_executor.hh"
#include "mem/cache.hh"
#include "mem/sparse_memory.hh"
#include "net/mesh.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace edge;

static void
BM_CacheAccess(benchmark::State &state)
{
    StatSet stats("bm");
    mem::CacheParams p;
    p.sizeBytes = 32 * 1024;
    mem::Cache cache(p, nullptr, stats);
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(++now, rng.below(1 << 20), false));
    }
}
BENCHMARK(BM_CacheAccess);

static void
BM_SparseMemoryRw(benchmark::State &state)
{
    mem::SparseMemory mem;
    Rng rng(11);
    for (auto _ : state) {
        Addr a = rng.below(1 << 22);
        mem.write(a, 8, a);
        benchmark::DoNotOptimize(mem.read(a, 8));
    }
}
BENCHMARK(BM_SparseMemoryRw);

static void
BM_MeshSendDeliver(benchmark::State &state)
{
    StatSet stats("bm");
    net::MeshParams p;
    net::Mesh<std::uint64_t> mesh(p, stats);
    Rng rng(13);
    Cycle now = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        net::Coord src{static_cast<std::uint16_t>(rng.below(5)),
                       static_cast<std::uint16_t>(rng.below(5))};
        net::Coord dst{static_cast<std::uint16_t>(rng.below(5)),
                       static_cast<std::uint16_t>(rng.below(5))};
        mesh.send(now, src, dst, sink);
        mesh.deliver(now + 16,
                     [&](net::Coord, std::uint64_t &&v) { sink += v; });
        ++now;
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_MeshSendDeliver);

static void
BM_RouteXY(benchmark::State &state)
{
    net::MeshGeom geom{5, 5};
    Rng rng(17);
    for (auto _ : state) {
        net::Coord src{static_cast<std::uint16_t>(rng.below(5)),
                       static_cast<std::uint16_t>(rng.below(5))};
        net::Coord dst{static_cast<std::uint16_t>(rng.below(5)),
                       static_cast<std::uint16_t>(rng.below(5))};
        benchmark::DoNotOptimize(net::routeXY(geom, src, dst));
    }
}
BENCHMARK(BM_RouteXY);

static void
BM_BuildAndPlaceKernel(benchmark::State &state)
{
    for (auto _ : state) {
        wl::KernelParams kp;
        kp.iterations = 16;
        isa::Program prog = wl::build("gzipish", kp);
        compiler::GridGeom geom;
        for (BlockId b = 0; b < prog.numBlocks(); ++b) {
            benchmark::DoNotOptimize(
                compiler::placeBlock(prog.block(b), geom));
        }
    }
}
BENCHMARK(BM_BuildAndPlaceKernel);

static void
BM_RefExecutor(benchmark::State &state)
{
    wl::KernelParams kp;
    kp.iterations = 1000;
    isa::Program prog = wl::build("bzip2ish", kp);
    for (auto _ : state) {
        compiler::RefExecutor ref(prog);
        benchmark::DoNotOptimize(ref.run(100000));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            1000);
}
BENCHMARK(BM_RefExecutor);

static void
BM_EndToEndSimulatedKernel(benchmark::State &state)
{
    for (auto _ : state) {
        wl::KernelParams kp;
        kp.iterations = 200;
        sim::Simulator s(wl::build("twolfish", kp),
                         sim::Configs::dsre());
        benchmark::DoNotOptimize(s.run());
    }
}
BENCHMARK(BM_EndToEndSimulatedKernel)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
