/**
 * @file
 * A guided tour of the DSRE protocol knobs on a workload with heavy
 * store-to-load traffic: what the speculative waves, the commit
 * wave, value-identity squashing, and the resend budget each
 * contribute. Prints one row per machine variant with the protocol
 * event counts next to performance.
 *
 *   $ ./build/examples/protocol_tour [iterations]
 */

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace edge;

int
main(int argc, char **argv)
{
    wl::KernelParams kp;
    kp.iterations =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1500;

    struct Variant
    {
        std::string name;
        std::function<void(core::MachineConfig &)> tweak;
    };
    std::vector<Variant> variants = {
        {"DSRE (default)", [](core::MachineConfig &) {}},
        {"no squash",
         [](core::MachineConfig &c) {
             c.core.squashIdenticalValues = false;
         }},
        {"commit wave on ALU",
         [](core::MachineConfig &c) {
             c.core.commitWaveUsesAlu = true;
         }},
        {"resend budget 1",
         [](core::MachineConfig &c) {
             c.lsq.maxResendsPerLoad = 1;
         }},
        {"resend budget 32",
         [](core::MachineConfig &c) {
             c.lsq.maxResendsPerLoad = 32;
         }},
    };

    std::printf("protocol tour on parserish (%llu iterations)\n\n",
                static_cast<unsigned long long>(kp.iterations));
    std::printf("%-20s %8s %9s %9s %9s %9s\n", "variant", "IPC",
                "resends", "upgrades", "squashes", "defers");
    std::printf("%s\n", std::string(68, '-').c_str());

    for (const Variant &v : variants) {
        core::MachineConfig cfg = sim::Configs::dsre();
        v.tweak(cfg);
        sim::Simulator sim(wl::build("parserish", kp), cfg);
        sim::RunResult r = sim.run();
        if (!r.halted || !r.archMatch) {
            std::fprintf(stderr, "%s failed!\n", v.name.c_str());
            return 1;
        }
        std::printf("%-20s %8.2f %9llu %9llu %9llu %9llu\n",
                    v.name.c_str(), r.ipc(),
                    static_cast<unsigned long long>(r.resends),
                    static_cast<unsigned long long>(r.upgrades),
                    static_cast<unsigned long long>(r.squashes),
                    static_cast<unsigned long long>(r.deferrals));
    }

    std::printf(
        "\nWhat the knobs are:\n"
        "  resends   corrective speculative waves launched by the\n"
        "            LSQ when a store changes a consumed value;\n"
        "  upgrades  commit-wave messages that only promote values\n"
        "            from speculative to final;\n"
        "  squashes  re-executions whose result was value-identical\n"
        "            and therefore never re-sent downstream;\n"
        "  defers    corrections folded into the commit wave by the\n"
        "            per-load resend budget (storm control).\n");
    return 0;
}
