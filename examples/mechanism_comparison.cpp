/**
 * @file
 * The paper's headline experiment in miniature: run one
 * aliasing-heavy workload under every misspeculation-handling
 * mechanism and compare. Shows the spectrum the paper describes —
 * never speculate (conservative), speculate and flush (blind),
 * predict and flush (store sets), speculate and selectively
 * re-execute (DSRE, optionally with value prediction), and the
 * perfect oracle.
 *
 *   $ ./build/examples/mechanism_comparison [kernel] [iterations]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace edge;

int
main(int argc, char **argv)
{
    std::string kernel = argc > 1 ? argv[1] : "bzip2ish";
    wl::KernelParams kp;
    kp.iterations =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;

    std::printf("workload: %s (%llu iterations)\n", kernel.c_str(),
                static_cast<unsigned long long>(kp.iterations));
    for (const auto &info : wl::kernels())
        if (info.name == kernel)
            std::printf("  models %s: %s\n", info.specAnalog.c_str(),
                        info.description.c_str());

    std::printf("\n%-16s %8s %8s %10s %9s %9s %8s\n", "mechanism",
                "cycles", "IPC", "violations", "flushes", "resends",
                "holds");
    std::printf("%s\n", std::string(74, '-').c_str());

    double base_cycles = 0.0;
    for (const auto &name : sim::Configs::allNames()) {
        sim::Simulator sim(wl::build(kernel, kp),
                           sim::Configs::byName(name));
        sim::RunResult r = sim.run();
        if (!r.halted || !r.archMatch) {
            std::fprintf(stderr, "%s failed!\n", name.c_str());
            return 1;
        }
        if (base_cycles == 0.0)
            base_cycles = static_cast<double>(r.cycles);
        std::printf("%-16s %8llu %8.2f %10llu %9llu %9llu %8llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(r.cycles), r.ipc(),
                    static_cast<unsigned long long>(r.violations),
                    static_cast<unsigned long long>(r.violFlushes),
                    static_cast<unsigned long long>(r.resends),
                    static_cast<unsigned long long>(r.policyHolds));
    }

    std::printf(
        "\nHow to read this:\n"
        "  conservative     never speculates: loads stall on every\n"
        "                   unresolved older store (the holds).\n"
        "  blind-flush      always speculates: every violation costs\n"
        "                   a full window flush.\n"
        "  storesets-flush  learns violating pairs and serialises\n"
        "                   them (fewer violations, more holds).\n"
        "  dsre             always speculates; violations become\n"
        "                   cheap selective re-executions (resends).\n"
        "  oracle           issues each load exactly when provably\n"
        "                   safe: the paper's upper bound.\n");
    return 0;
}
