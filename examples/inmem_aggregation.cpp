/**
 * @file
 * A domain scenario written against the public API: an in-memory
 * hash aggregation (GROUP BY + SUM), the classic database kernel
 * whose read-modify-write bucket updates create exactly the
 * data-dependent store-to-load dependences the paper targets.
 * Builds the kernel with the block DSL, checks it against the
 * functional reference, and sweeps the window size under flush and
 * DSRE recovery to show where selective re-execution pays off.
 *
 *   $ ./build/examples/inmem_aggregation [rows]
 */

#include <cstdio>
#include <cstdlib>

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "sim/simulator.hh"

using namespace edge;

namespace {

constexpr Addr kRows = 0x10000;    // (key, value) pairs, 16 B each
constexpr Addr kBuckets = 0x80000; // one sum per group
constexpr Addr kOut = 0x1000;
constexpr unsigned kGroups = 64;

/** GROUP BY (key % 64) SUM(value) over `rows` packed tuples. */
isa::Program
buildAggregation(std::uint64_t rows, std::uint64_t seed)
{
    compiler::ProgramBuilder pb("aggregation");
    {
        Rng rng(seed);
        std::vector<Word> tuples(rows * 2);
        for (std::uint64_t i = 0; i < rows; ++i) {
            // Skewed keys: a handful of hot groups, like real data.
            tuples[i * 2] = rng.below(kGroups) & rng.below(kGroups);
            tuples[i * 2 + 1] = rng.below(1000);
        }
        pb.initDataWords(kRows, tuples);
        pb.initDataWords(kBuckets, std::vector<Word>(kGroups, 0));
    }
    pb.setInitReg(1, 0);
    pb.setInitReg(2, rows);

    auto &loop = pb.newBlock("loop");
    {
        compiler::Val i = loop.readReg(1);
        compiler::Val n = loop.readReg(2);
        compiler::Val row = loop.addi(loop.shli(i, 4), kRows);
        compiler::Val key = loop.load(row, 8, 0);
        compiler::Val val = loop.load(row, 8, 8);
        // The RMW bucket update: whenever two in-flight rows hit the
        // same group, the younger load depends on the older store.
        compiler::Val bucket =
            loop.addi(loop.shli(loop.andi(key, kGroups - 1), 3),
                      kBuckets);
        compiler::Val sum = loop.load(bucket, 8);
        loop.store(bucket, loop.add(sum, val), 8);

        compiler::Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, n), "loop", "done");
    }
    auto &done = pb.newBlock("done");
    {
        // Publish a result digest: sum of the first four buckets.
        compiler::Val b0 = done.load(done.imm(kBuckets), 8);
        compiler::Val b1 = done.load(done.imm(kBuckets + 8), 8);
        compiler::Val b2 = done.load(done.imm(kBuckets + 16), 8);
        compiler::Val b3 = done.load(done.imm(kBuckets + 24), 8);
        done.store(done.imm(kOut),
                   done.add(done.add(b0, b1), done.add(b2, b3)), 8);
        done.branchHalt();
    }
    pb.setEntry("loop");
    return pb.build();
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t rows =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

    std::printf("in-memory aggregation: GROUP BY over %llu rows, "
                "%u groups (skewed)\n\n",
                static_cast<unsigned long long>(rows), kGroups);

    std::printf("%-8s %16s %16s %10s\n", "window", "storesets-flush",
                "dsre", "speedup");
    std::printf("%s\n", std::string(54, '-').c_str());
    for (unsigned frames : {1u, 2u, 4u, 8u, 16u}) {
        double ipc[2] = {0, 0};
        int k = 0;
        for (const char *cfg_name : {"storesets-flush", "dsre"}) {
            core::MachineConfig cfg = sim::Configs::byName(cfg_name);
            cfg.core.numFrames = frames;
            sim::Simulator sim(buildAggregation(rows, 42), cfg);
            sim::RunResult r = sim.run();
            if (!r.halted || !r.archMatch) {
                std::fprintf(stderr, "run failed!\n");
                return 1;
            }
            ipc[k++] = r.ipc();
        }
        std::printf("%5u bl %16.2f %16.2f %9.2fx\n", frames, ipc[0],
                    ipc[1], ipc[1] / ipc[0]);
    }

    std::printf("\nThe deeper the window, the more concurrent bucket\n"
                "updates are in flight, and the more a flush-based\n"
                "machine loses to selective re-execution on the hot\n"
                "groups' RMW chains.\n");
    return 0;
}
