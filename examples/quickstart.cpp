/**
 * @file
 * Quickstart: author an EDGE program with the block-builder DSL,
 * run it on the DSRE machine, and read the results.
 *
 *   $ ./build/examples/quickstart
 *
 * The program is a small checksum loop: it streams over an array,
 * accumulates a mixed checksum in a register, and stores the result
 * to memory. The simulator runs the functional reference first (the
 * golden model), then the timing machine, and verifies that both
 * commit exactly the same architectural state.
 */

#include <cstdio>

#include "compiler/builder.hh"
#include "sim/simulator.hh"

using namespace edge;

int
main()
{
    // ------------------------------------------------------------------
    // 1. Build the program: hyperblocks of dataflow instructions.
    // ------------------------------------------------------------------
    compiler::ProgramBuilder pb("checksum");

    constexpr Addr kData = 0x10000;
    constexpr Addr kResult = 0x1000;
    constexpr std::uint64_t kWords = 512;

    // Initial memory image and registers.
    {
        std::vector<Word> data(kWords);
        for (std::uint64_t i = 0; i < kWords; ++i)
            data[i] = i * 2654435761u;
        pb.initDataWords(kData, data);
    }
    pb.setInitReg(1, 0);      // i
    pb.setInitReg(2, kWords); // trip count
    pb.setInitReg(5, 0);      // checksum accumulator

    // The loop block. Values are dataflow edges: every instruction
    // names its consumers, there are no register renames inside a
    // block, and loads/stores are ordered by their emission order.
    auto &loop = pb.newBlock("loop");
    {
        compiler::Val i = loop.readReg(1);
        compiler::Val n = loop.readReg(2);
        compiler::Val acc = loop.readReg(5);

        compiler::Val w =
            loop.load(loop.addi(loop.shli(i, 3), kData), 8);
        compiler::Val mixed =
            loop.bxor(loop.muli(acc, 31), loop.addi(w, 7));
        loop.writeReg(5, mixed);

        compiler::Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, n), "loop", "done");
    }

    // The epilogue stores the checksum and halts the machine.
    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(kResult), done.readReg(5), 8);
        done.branchHalt();
    }

    pb.setEntry("loop");
    isa::Program prog = pb.build(); // validated EDGE program

    std::printf("program '%s': %zu static blocks, %zu instructions\n",
                prog.name().c_str(), prog.numBlocks(),
                prog.staticInsts());

    // ------------------------------------------------------------------
    // 2. Run it on the DSRE machine (blind load speculation repaired
    //    by distributed selective re-execution).
    // ------------------------------------------------------------------
    sim::Simulator sim(std::move(prog), sim::Configs::dsre());
    sim::RunResult r = sim.run();

    std::printf("\nran %llu blocks / %llu instructions in %llu "
                "cycles -> IPC %.2f\n",
                static_cast<unsigned long long>(r.committedBlocks),
                static_cast<unsigned long long>(r.committedInsts),
                static_cast<unsigned long long>(r.cycles), r.ipc());
    std::printf("architectural state matches the reference: %s\n",
                r.archMatch ? "yes" : "NO (bug!)");
    std::printf("dependence violations: %llu, DSRE resends: %llu, "
                "re-executions: %llu\n",
                static_cast<unsigned long long>(r.violations),
                static_cast<unsigned long long>(r.resends),
                static_cast<unsigned long long>(r.reexecs));

    // ------------------------------------------------------------------
    // 3. Every counter the machine keeps is in the stat set.
    // ------------------------------------------------------------------
    std::printf("\nselected statistics:\n");
    for (const char *name :
         {"core.committed_blocks", "lsq.loads", "lsq.forwards",
          "net.messages", "gcn.messages", "nbp.correct"}) {
        std::printf("  %-24s %llu\n", name,
                    static_cast<unsigned long long>(
                        sim.stats().counterValue(name)));
    }
    return r.archMatch ? 0 : 1;
}
