/**
 * @file
 * The central correctness property of the whole reproduction: for
 * every workload kernel, under every recovery mechanism and
 * dependence policy, the timing simulator must commit exactly the
 * architectural state (registers, memory, committed counts) that
 * the functional reference produces — no matter how much
 * misspeculation, re-execution, or flushing happened on the way.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace edge {
namespace {

using Combo = std::tuple<std::string, std::string>;

class WorkloadXMechanism : public ::testing::TestWithParam<Combo>
{
};

TEST_P(WorkloadXMechanism, ArchitecturalEquivalence)
{
    const auto &[kernel, config] = GetParam();
    wl::KernelParams kp;
    kp.iterations = 400; // small but enough to fill the window
    sim::Simulator s(wl::build(kernel, kp),
                     sim::Configs::byName(config));
    sim::RunResult r = s.run(20'000'000);
    ASSERT_TRUE(r.halted) << kernel << " did not halt under "
                          << config;
    EXPECT_TRUE(r.archMatch)
        << kernel << " diverged from the reference under " << config;

    if (config == "conservative") {
        // A policy that never speculates can never violate.
        EXPECT_EQ(r.violations, 0u) << kernel;
    }
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> out;
    for (const auto &k : wl::kernelNames())
        for (const auto &c : sim::Configs::allNames())
            out.emplace_back(k, c);
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadXMechanism, ::testing::ValuesIn(allCombos()),
    [](const auto &info) {
        std::string n = std::get<0>(info.param) + "_" +
                        std::get<1>(info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace edge
