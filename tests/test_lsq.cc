/**
 * @file
 * Unit tests for the load/store queue — the DSRE protocol's core
 * component — exercised directly through its message interface with
 * captured replies: forwarding (including byte-accurate partial
 * overlap), violation detection, DSRE resends vs flush violations,
 * the commit wave (finality upgrades), policy holds, the replay
 * hold and resend-budget mechanisms, commit draining, and flushes.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "compiler/builder.hh"
#include "lsq/lsq.hh"

namespace edge::lsq {
namespace {

using isa::Target;

/**
 * Fixture: an LSQ over a tiny hierarchy with captured outputs, plus
 * a canned block shape: every mapped block has LSID 0 = 8-byte load
 * (slot 0) and LSID 1 = 8-byte store (slot 1).
 */
class LsqTest : public ::testing::Test
{
  protected:
    explicit LsqTest(Recovery recovery = Recovery::Dsre,
                     pred::DepPolicy policy = pred::DepPolicy::Blind)
        : hier(mem::HierarchyParams{}, stats),
          policyPtr(pred::makeDependencePredictor(policy, nullptr,
                                                  stats))
    {
        LsqParams p;
        p.recovery = recovery;
        lsq = std::make_unique<LoadStoreQueue>(
            p, &hier, &memory, policyPtr.get(), stats,
            [this](const LoadReply &r) { replies.push_back(r); },
            [this](const Violation &v) { violations.push_back(v); });

        // The canned two-memop block.
        compiler::ProgramBuilder pb("t");
        auto &b = pb.newBlock("blk");
        compiler::Val a = b.readReg(1);
        compiler::Val x = b.load(a, 8);
        b.store(b.readReg(2), x, 8);
        b.branchHalt();
        prog = std::make_unique<isa::Program>(pb.build());
    }

    void
    map(DynBlockSeq seq)
    {
        lsq->mapBlock(seq, seq, 0, prog->block(0));
    }

    void
    sendLoad(Cycle now, DynBlockSeq seq, Addr addr,
             ValState st = ValState::Spec, std::uint32_t wave = 1)
    {
        std::array<Target, isa::kMaxTargets> tgts{};
        tgts[0] = Target::toOperand(1, 1);
        lsq->loadRequest(now, seq, 0, addr, st, wave, 0, tgts, 0);
    }

    void
    sendStore(Cycle now, DynBlockSeq seq, Addr addr, Word data,
              ValState ast = ValState::Final,
              ValState dst = ValState::Final, std::uint32_t wave = 1)
    {
        lsq->storeResolve(now, seq, 1, addr, data, ast, dst, wave, 0);
    }

    const LoadReply &
    lastReply()
    {
        EXPECT_FALSE(replies.empty());
        return replies.back();
    }

    StatSet stats{"t"};
    mem::SparseMemory memory;
    mem::Hierarchy hier;
    std::unique_ptr<pred::DependencePredictor> policyPtr;
    std::unique_ptr<LoadStoreQueue> lsq;
    std::unique_ptr<isa::Program> prog;
    std::vector<LoadReply> replies;
    std::vector<Violation> violations;
};

class LsqFlushTest : public LsqTest
{
  protected:
    LsqFlushTest() : LsqTest(Recovery::Flush) {}
};

class LsqConservativeTest : public LsqTest
{
  protected:
    LsqConservativeTest()
        : LsqTest(Recovery::Flush, pred::DepPolicy::Conservative)
    {
    }
};

TEST_F(LsqTest, LoadReadsMemoryWhenNoStoresMatch)
{
    memory.write(0x100, 8, 77);
    map(1);
    sendLoad(0, 1, 0x100);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(lastReply().value, 77u);
    EXPECT_GT(lastReply().when, 0u);
}

TEST_F(LsqTest, ForwardsFromYoungestOlderStore)
{
    memory.write(0x100, 8, 1);
    map(1);
    map(2);
    map(3);
    sendStore(0, 1, 0x100, 10);
    sendStore(0, 2, 0x100, 20);
    sendLoad(1, 3, 0x100);
    EXPECT_EQ(lastReply().value, 20u); // youngest older wins
}

TEST_F(LsqTest, SameBlockOlderStoreForwards)
{
    map(1);
    sendStore(0, 1, 0x200, 42);
    // LSID 0 load is OLDER than the LSID 1 store: no forwarding.
    sendLoad(1, 1, 0x200);
    EXPECT_EQ(lastReply().value, 0u);
}

TEST_F(LsqTest, PartialOverlapMergesBytes)
{
    memory.write(0x100, 8, 0x1111111111111111ull);
    map(1);
    map(2);
    lsq->storeResolve(0, 1, 1, 0x104, 0xAABBCCDD, ValState::Final,
                      ValState::Final, 1, 0); // 4-byte... entry is 8B
    sendLoad(1, 2, 0x100);
    // The store covers bytes [0x104, 0x10c); the load reads
    // [0x100, 0x108): upper half comes from the store's low half.
    EXPECT_EQ(lastReply().value, 0xAABBCCDD11111111ull);
}

TEST_F(LsqTest, ViolationTriggersResendWithNewValue)
{
    memory.write(0x100, 8, 5);
    map(1);
    map(2);
    sendLoad(0, 2, 0x100); // speculates: reads memory, 5
    EXPECT_EQ(lastReply().value, 5u);
    sendStore(3, 1, 0x100, 99); // older store changes the value
    ASSERT_EQ(replies.size(), 2u);
    EXPECT_EQ(lastReply().value, 99u);
    EXPECT_GT(lastReply().wave, replies[0].wave);
    EXPECT_EQ(lsq->violations(), 1u);
    EXPECT_TRUE(violations.empty()); // DSRE: no flush requested
}

TEST_F(LsqTest, SameValueStoreCausesNoResend)
{
    memory.write(0x100, 8, 99);
    map(1);
    map(2);
    sendLoad(0, 2, 0x100);
    sendStore(3, 1, 0x100, 99); // silent store
    EXPECT_EQ(replies.size(), 1u);
    EXPECT_EQ(lsq->violations(), 0u);
}

TEST_F(LsqTest, CommitWaveUpgradesSpecLoads)
{
    memory.write(0x100, 8, 7);
    map(1);
    map(2);
    // Load in block 2 with a Final address but an unresolved older
    // store: the reply must be speculative.
    sendLoad(0, 2, 0x100, ValState::Final);
    EXPECT_EQ(lastReply().state, ValState::Spec);
    // The older store resolves Final to a disjoint address: the
    // load's value was right all along; an upgrade follows.
    sendStore(5, 1, 0x900, 1);
    ASSERT_EQ(replies.size(), 2u);
    EXPECT_EQ(lastReply().state, ValState::Final);
    EXPECT_EQ(lastReply().value, 7u);
    EXPECT_TRUE(lastReply().statusOnly);
}

TEST_F(LsqTest, SpecAddressBlocksFinality)
{
    memory.write(0x100, 8, 7);
    map(1);
    sendLoad(0, 1, 0x100, ValState::Spec);
    EXPECT_EQ(lastReply().state, ValState::Spec);
    // Address upgrade arrives: now the load can finalise (no older
    // stores at all).
    sendLoad(2, 1, 0x100, ValState::Final, 2);
    EXPECT_EQ(lastReply().state, ValState::Final);
}

TEST_F(LsqTest, StoreAddrFinalityEnablesLoadFinality)
{
    memory.write(0x100, 8, 7);
    map(1);
    map(2);
    sendLoad(0, 2, 0x100, ValState::Final);
    // Store resolves to a disjoint address with Final address but
    // SPEC data: the load can still finalise (data irrelevant).
    sendStore(5, 1, 0x900, 1, ValState::Final, ValState::Spec);
    EXPECT_EQ(lastReply().state, ValState::Final);
}

TEST_F(LsqTest, OverlappingSpecDataBlocksFinality)
{
    memory.write(0x100, 8, 7);
    map(1);
    map(2);
    sendLoad(0, 2, 0x100, ValState::Final);
    std::size_t before = replies.size();
    // Overlapping store with Final addr but Spec data: forwarded
    // bytes could still change, so no upgrade to Final.
    sendStore(5, 1, 0x100, 7, ValState::Final, ValState::Spec);
    for (std::size_t i = before; i < replies.size(); ++i)
        EXPECT_EQ(replies[i].state, ValState::Spec);
    EXPECT_FALSE(lsq->blockMemFinal(2));
}

TEST_F(LsqTest, ResendBudgetDefersToCommitWave)
{
    memory.write(0x100, 8, 0);
    map(1);
    map(2);
    map(3);
    map(4);
    map(5);
    map(6);
    map(7);
    // Young load speculates early.
    sendLoad(0, 7, 0x100, ValState::Final);
    // Six older stores resolve one by one, each changing the value;
    // the budget (4) forces deferral after the fourth resend.
    for (DynBlockSeq s = 1; s <= 6; ++s) {
        lsq->storeResolve(s, s, 1, 0x100, 100 + s, ValState::Final,
                          ValState::Final, 1, 0);
    }
    EXPECT_GT(stats.counterValue("lsq.deferrals"), 0u);
    // Once everything is final, the last reply carries the correct
    // final value (youngest older store = block 6).
    EXPECT_EQ(lastReply().value, 106u);
    EXPECT_EQ(lastReply().state, ValState::Final);
}

TEST_F(LsqTest, BlockMemFinalRequiresEverything)
{
    map(1);
    EXPECT_FALSE(lsq->blockMemFinal(1)); // nothing arrived
    sendLoad(0, 1, 0x100, ValState::Final);
    EXPECT_FALSE(lsq->blockMemFinal(1)); // store missing
    sendStore(1, 1, 0x200, 9);
    EXPECT_TRUE(lsq->blockMemFinal(1));
}

TEST_F(LsqTest, CommitDrainsStoresToMemory)
{
    map(1);
    sendLoad(0, 1, 0x100, ValState::Final);
    sendStore(1, 1, 0x300, 1234);
    lsq->commitBlock(10, 1);
    EXPECT_EQ(memory.read(0x300, 8), 1234u);
    EXPECT_EQ(lsq->numBlocks(), 0u);
}

TEST_F(LsqTest, FlushDropsBlocksAndStaleMessages)
{
    map(1);
    map(2);
    lsq->flushFrom(2);
    EXPECT_EQ(lsq->numBlocks(), 1u);
    // Stale messages for the flushed block are ignored.
    sendLoad(5, 2, 0x100);
    EXPECT_TRUE(replies.empty());
}

TEST_F(LsqTest, StaleWavesAreDropped)
{
    memory.write(0x100, 8, 7);
    memory.write(0x200, 8, 9);
    map(1);
    sendLoad(0, 1, 0x200, ValState::Spec, /*wave=*/5);
    EXPECT_EQ(lastReply().value, 9u);
    // A reordered older request must not roll the address back.
    sendLoad(1, 1, 0x100, ValState::Spec, /*wave=*/3);
    EXPECT_EQ(replies.size(), 1u);
}

TEST_F(LsqFlushTest, ViolationRequestsFlush)
{
    memory.write(0x100, 8, 5);
    map(1);
    map(2);
    sendLoad(0, 2, 0x100);
    sendStore(3, 1, 0x100, 99);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].loadSeq, 2u);
    EXPECT_EQ(violations[0].storeSeq, 1u);
    // Flush recovery: the LSQ does not resend.
    EXPECT_EQ(replies.size(), 1u);
}

TEST_F(LsqFlushTest, AddressOverlapAloneViolatesUnderFlush)
{
    memory.write(0x100, 8, 99);
    map(1);
    map(2);
    sendLoad(0, 2, 0x100);
    sendStore(3, 1, 0x100, 99); // same value, still a violation
    EXPECT_EQ(violations.size(), 1u);
}

TEST_F(LsqFlushTest, RepliesAreAlwaysFinalUnderFlush)
{
    map(1);
    map(2);
    sendLoad(0, 2, 0x100, ValState::Spec);
    EXPECT_EQ(lastReply().state, ValState::Final);
}

TEST_F(LsqFlushTest, ReplayHoldForcesConservativeRetry)
{
    memory.write(0x100, 8, 5);
    map(1);
    map(2);
    sendLoad(0, 2, 0x100);
    sendStore(3, 1, 0x100, 99); // violation -> flush requested
    ASSERT_EQ(violations.size(), 1u);
    lsq->flushFrom(2);
    replies.clear();

    // An older block with an unresolved store re-enters the window,
    // then the violating load's block is refetched at the same
    // architectural index (4 -> older, 5 -> the replayed instance).
    lsq->mapBlock(4, 4, 0, prog->block(0));
    lsq->mapBlock(5, 2, 0, prog->block(0)); // archIdx 2 again
    std::array<Target, isa::kMaxTargets> tgts{};
    tgts[0] = Target::toOperand(1, 1);
    // The one-shot replay hold makes the load wait for block 4's
    // unresolved store even under the blind policy.
    lsq->loadRequest(10, 5, 0, 0x100, ValState::Final, 1, 0, tgts, 0);
    EXPECT_TRUE(replies.empty());
    EXPECT_GT(stats.counterValue("lsq.replay_waits"), 0u);
    // Resolving the older store releases the hold.
    lsq->storeResolve(12, 4, 1, 0x800, 1, ValState::Final,
                      ValState::Final, 1, 0);
    ASSERT_FALSE(replies.empty());
    EXPECT_EQ(lastReply().value, 99u); // forwarded from block 1
}

TEST_F(LsqConservativeTest, LoadsWaitForOlderStores)
{
    memory.write(0x100, 8, 5);
    map(1);
    map(2);
    sendLoad(0, 2, 0x100, ValState::Final);
    EXPECT_TRUE(replies.empty()); // block 1's store unresolved
    EXPECT_GT(stats.counterValue("lsq.policy_holds"), 0u);
    sendStore(3, 1, 0x500, 1); // resolve releases the hold
    ASSERT_FALSE(replies.empty());
    EXPECT_EQ(lastReply().value, 5u);
    EXPECT_EQ(lsq->violations(), 0u);
}

} // namespace
} // namespace edge::lsq
