/**
 * @file
 * Chaos-harness tests: the DSRE convergence claim under deterministic
 * fault injection, the runtime invariant checker catching seeded
 * protocol mutations by name, and graceful (structured, non-aborting)
 * failure reporting.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "chaos/chaos.hh"
#include "chaos/trace_ring.hh"
#include "compiler/builder.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "workloads/workloads.hh"

namespace edge {
namespace {

const std::vector<std::string> kMechanisms = {
    "blind-flush", "storesets-flush", "dsre", "storesets-dsre"};

isa::Program
kernelProgram(const std::string &name, std::uint64_t iterations)
{
    wl::KernelParams kp;
    kp.iterations = iterations;
    return wl::build(name, kp);
}

// ---------------------------------------------------------------------
// Fault-schedule determinism: everything derives from one seed.
// ---------------------------------------------------------------------

TEST(ChaosEngine, StreamsAreSeedDeterministic)
{
    chaos::ChaosParams p =
        chaos::ChaosParams::byProfile(chaos::Profile::Heavy, 1234);
    chaos::ChaosEngine a(p);
    chaos::ChaosEngine b(p);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.hopJitter(), b.hopJitter());
        EXPECT_EQ(a.memJitter(), b.memJitter());
        EXPECT_EQ(a.storeResolveDelay(), b.storeResolveDelay());
        EXPECT_EQ(a.duplicate(), b.duplicate());
    }
    // A different run-level seed yields a different schedule.
    p.seed = 1235;
    chaos::ChaosEngine c(p);
    int diffs = 0;
    for (int i = 0; i < 1000; ++i)
        diffs += a.hopJitter() != c.hopJitter();
    EXPECT_GT(diffs, 0);
}

TEST(ChaosRun, SameSeedReplaysExactly)
{
    core::MachineConfig cfg = sim::Configs::dsre();
    cfg.rngSeed = 9;
    cfg.chaos = chaos::ChaosParams::byProfile(chaos::Profile::Heavy, 9);
    cfg.checkInvariants = true;
    sim::Simulator s(kernelProgram("parserish", 120), cfg);
    sim::RunResult a = s.run();
    sim::RunResult b = s.run(cfg);
    ASSERT_TRUE(a.halted && a.archMatch) << a.error.format();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.injections.total(), b.injections.total());
    EXPECT_EQ(a.invariantChecks, b.invariantChecks);
    EXPECT_EQ(a.chaosSeed, 9u);
    EXPECT_GT(a.injections.total(), 0u);
}

// ---------------------------------------------------------------------
// The convergence sweep (the acceptance grid): >= 20 seeds x 4
// kernels x all four mechanism configs, every run committing
// bit-identical architectural state with zero invariant violations.
// ---------------------------------------------------------------------

TEST(ChaosConvergence, SweepGridCommitsIdenticalState)
{
    sim::ChaosSweepParams sp;
    for (std::uint64_t seed = 1; seed <= 20; ++seed)
        sp.seeds.push_back(seed);
    sp.configs = kMechanisms;
    sp.profile = chaos::Profile::Heavy;
    sp.checkInvariants = true;

    for (const std::string &kernel :
         {"parserish", "mcfish", "twolfish", "gzipish"}) {
        sim::ChaosSweepReport rep =
            sim::chaosSweep(kernelProgram(kernel, 80), sp);
        EXPECT_TRUE(rep.allConverged())
            << kernel << ":\n"
            << rep.summary();
        EXPECT_EQ(rep.runs.size(), 20u * kMechanisms.size());
        EXPECT_GT(rep.totalInjections, 0u);
        EXPECT_GT(rep.totalChecks, 0u);
    }
}

TEST(ChaosConvergence, SpuriousWavesForceReFiresAndStillConverge)
{
    // The lsq profile aims squarely at DSRE's re-fire machinery:
    // delayed store resolution plus injected spurious violation
    // waves (a wrong value immediately corrected one wave later).
    core::MachineConfig cfg = sim::Configs::dsre();
    cfg.rngSeed = 5;
    cfg.chaos = chaos::ChaosParams::byProfile(chaos::Profile::Lsq, 5);
    cfg.checkInvariants = true;
    sim::Simulator s(kernelProgram("parserish", 150), cfg);
    sim::RunResult r = s.run();
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.archMatch);
    EXPECT_TRUE(r.error.ok()) << r.error.format();
    EXPECT_GT(r.injections.spuriousWaves, 0u);
    EXPECT_GT(r.invariantChecks, 0u);
}

// ---------------------------------------------------------------------
// Graceful failure: a wedged machine returns a structured SimError
// (with the trace-ring tail) instead of aborting the process.
// ---------------------------------------------------------------------

#ifdef EDGE_MUTATIONS

TEST(ChaosGraceful, WatchdogReturnsStructuredReport)
{
    core::MachineConfig cfg = sim::Configs::dsre();
    cfg.core.watchdogCycles = 20000;
    cfg.chaos.mutation = chaos::Mutation::DropUpgrade;
    cfg.chaos.mutationNode = ~0u; // every node drops its upgrades
    cfg.checkInvariants = true;
    sim::Simulator s(kernelProgram("parserish", 60), cfg);
    sim::RunResult r = s.run();
    EXPECT_FALSE(r.halted);
    EXPECT_FALSE(r.archMatch);
    EXPECT_EQ(r.error.reason, chaos::SimError::Reason::Watchdog);
    EXPECT_EQ(r.error.invariant, "commit-progress");
    EXPECT_FALSE(r.error.message.empty());
    EXPECT_FALSE(r.error.trace.empty());
    EXPECT_FALSE(r.error.format().empty());
}

// ---------------------------------------------------------------------
// Mutation tests: each compile-time-flagged protocol mutation must be
// caught by the named invariant.
// ---------------------------------------------------------------------

TEST(ChaosMutation, SkipSquashCaughtByValueIdentityInvariant)
{
    // The lsq chaos profile injects spurious glitch/fix wave pairs;
    // consumers whose output is insensitive to the glitched bit
    // re-execute to an identical result, which the protocol must
    // squash. The mutation sends those identical waves anyway.
    core::MachineConfig cfg = sim::Configs::dsre();
    cfg.rngSeed = 5;
    cfg.chaos = chaos::ChaosParams::byProfile(chaos::Profile::Lsq, 5);
    cfg.chaos.mutation = chaos::Mutation::SkipSquash;
    cfg.chaos.mutationNode = ~0u;
    cfg.checkInvariants = true;
    sim::Simulator s(kernelProgram("parserish", 150), cfg);
    sim::RunResult r = s.run();
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.error.reason,
              chaos::SimError::Reason::InvariantViolation);
    EXPECT_EQ(r.error.invariant, "value-identity-squash");
    EXPECT_FALSE(r.error.trace.empty());
}

TEST(ChaosMutation, DropUpgradeCaughtByCommitProgress)
{
    // Finality never reaches one node's consumers, so the commit
    // wave stalls; the deadlock watchdog surfaces that as the
    // commit-progress invariant rather than killing the process.
    core::MachineConfig cfg = sim::Configs::dsre();
    cfg.core.watchdogCycles = 20000;
    cfg.chaos.mutation = chaos::Mutation::DropUpgrade;
    cfg.chaos.mutationNode = ~0u;
    sim::Simulator s(kernelProgram("twolfish", 60), cfg);
    sim::RunResult r = s.run();
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.error.reason, chaos::SimError::Reason::Watchdog);
    EXPECT_EQ(r.error.invariant, "commit-progress");
}

/**
 * Two older stores cover the same word, then a load reads it. The
 * protocol forwards youngest-first; the mutation flips that to
 * oldest-first, so the load's final value disagrees with the
 * age-ordered recomputation inside the checker.
 */
isa::Program
overlappingStoreProgram()
{
    compiler::ProgramBuilder pb("misorder");
    pb.setInitReg(1, 0);
    auto &blk = pb.newBlock("body");
    compiler::Val addr = blk.imm(0x1000);
    blk.store(addr, blk.imm(0x11), 8);
    blk.store(addr, blk.imm(0x22), 8);
    compiler::Val v = blk.load(addr, 8);
    blk.writeReg(1, v);
    blk.branchHalt();
    pb.setEntry("body");
    return pb.build();
}

TEST(ChaosMutation, MisorderForwardCaughtByAgeOrderedForwarding)
{
    core::MachineConfig cfg = sim::Configs::dsre();
    cfg.chaos.mutation = chaos::Mutation::MisorderForward;
    cfg.checkInvariants = true;
    sim::Simulator s(overlappingStoreProgram(), cfg);
    sim::RunResult r = s.run();
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.error.reason,
              chaos::SimError::Reason::InvariantViolation);
    EXPECT_EQ(r.error.invariant, "lsq-age-ordered-forwarding");
}

TEST(ChaosMutation, UnmutatedOverlappingStoresAreClean)
{
    // The same program with the mutation off passes the checker and
    // matches the reference — the signal comes from the mutation,
    // not from the program.
    core::MachineConfig cfg = sim::Configs::dsre();
    cfg.checkInvariants = true;
    sim::Simulator s(overlappingStoreProgram(), cfg);
    sim::RunResult r = s.run();
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.archMatch);
    EXPECT_TRUE(r.error.ok()) << r.error.format();
}

#endif // EDGE_MUTATIONS

// ---------------------------------------------------------------------
// TraceRing: the failure-report tail must be the populated prefix in
// insertion order before the ring wraps, and the newest `depth`
// events afterwards.
// ---------------------------------------------------------------------

chaos::TraceEvent
cycleEvent(Cycle c)
{
    chaos::TraceEvent ev;
    ev.cycle = c;
    ev.kind = chaos::TraceEvent::Kind::Commit;
    return ev;
}

std::vector<Cycle>
snapshotCycles(const chaos::TraceRing &ring)
{
    // The cycle leads each rendered line: "cycle <N> ...".
    std::vector<Cycle> out;
    for (const std::string &line : ring.snapshot())
        out.push_back(std::strtoull(line.c_str() + 6, nullptr, 10));
    return out;
}

TEST(TraceRing, PartialFillReportsInsertionOrder)
{
    chaos::TraceRing ring(8);
    for (Cycle c = 1; c <= 3; ++c)
        ring.push(cycleEvent(c));
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(snapshotCycles(ring), (std::vector<Cycle>{1, 2, 3}));
}

TEST(TraceRing, ExactFillReportsAllEvents)
{
    chaos::TraceRing ring(4);
    for (Cycle c = 1; c <= 4; ++c)
        ring.push(cycleEvent(c));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(snapshotCycles(ring), (std::vector<Cycle>{1, 2, 3, 4}));
}

TEST(TraceRing, WraparoundKeepsNewestDepthEvents)
{
    chaos::TraceRing ring(4);
    for (Cycle c = 1; c <= 6; ++c)
        ring.push(cycleEvent(c));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(snapshotCycles(ring), (std::vector<Cycle>{3, 4, 5, 6}));
}

TEST(TraceRing, DepthZeroIsInertAndSafe)
{
    chaos::TraceRing ring(0);
    for (Cycle c = 1; c <= 3; ++c)
        ring.push(cycleEvent(c));
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRing, EmptyRingSnapshotIsEmpty)
{
    chaos::TraceRing ring(8);
    EXPECT_TRUE(ring.snapshot().empty());
}

} // namespace
} // namespace edge
