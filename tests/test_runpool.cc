/**
 * @file
 * The parallel run harness. Two layers under test:
 *
 *  - common/thread_pool: ordered results, exception propagation,
 *    backpressure on a bounded queue;
 *  - sim/run_pool + sim/sweep + bench grids: the determinism
 *    contract — every cell of a grid is an independent deterministic
 *    run, so `-j 1` and `-j 8` must produce bit-identical RunResults
 *    (cycles, every counter, every histogram, all flags), and a
 *    failing cell must surface as a structured row, never a fatal.
 */

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "bench/bench_util.hh"
#include "common/thread_pool.hh"
#include "sim/run_pool.hh"
#include "sim/sweep.hh"
#include "workloads/workloads.hh"

using namespace edge;

namespace {

// ---------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, DefaultThreadsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    ThreadPool pool(3);
    EXPECT_EQ(pool.numThreads(), 3u);
}

TEST(ThreadPool, ParallelIndexOrderedResults)
{
    ThreadPool pool(4);
    // Jitter the per-job latency so completion order differs from
    // submission order; results must still come back index-ordered.
    std::vector<int> out = parallelIndex(pool, 100, [](std::size_t i) {
        if (i % 7 == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return static_cast<int>(i * i);
    });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ThreadPool, ParallelIndexPropagatesLowestIndexError)
{
    ThreadPool pool(4);
    try {
        parallelIndex(pool, 64, [](std::size_t i) -> int {
            if (i == 9)
                throw std::runtime_error("nine");
            if (i == 41)
                throw std::runtime_error("forty-one");
            return 0;
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        // Deterministic pick: the lowest failing index wins, no
        // matter which worker hit its throw first.
        EXPECT_STREQ(e.what(), "nine");
    }
}

TEST(ThreadPool, BoundedQueueBackpressure)
{
    // Queue shorter than the job list: submit() must block instead of
    // growing without bound, and every job must still run exactly once.
    ThreadPool pool(2, /*queue_capacity=*/4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, DrainIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        pool.drain();
        EXPECT_EQ(ran.load(), 10 * (round + 1));
    }
}

// ---------------------------------------------------------------
// RunPool determinism

void
expectIdentical(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedBlocks, b.committedBlocks);
    EXPECT_EQ(a.committedInsts, b.committedInsts);
    EXPECT_EQ(a.halted, b.halted);
    EXPECT_EQ(a.archMatch, b.archMatch);
    EXPECT_EQ(a.error.ok(), b.error.ok());
    EXPECT_EQ(a.rngSeed, b.rngSeed);
    EXPECT_EQ(a.chaosSeed, b.chaosSeed);
    EXPECT_EQ(a.injections.total(), b.injections.total());
    EXPECT_EQ(a.invariantChecks, b.invariantChecks);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.resends, b.resends);
    EXPECT_EQ(a.reexecs, b.reexecs);
    EXPECT_EQ(a.upgrades, b.upgrades);
    // The full counter snapshot covers every stat the run produced
    // (including net.delivered, LSQ traffic, cache behaviour): any
    // thread-schedule dependence anywhere in the model shows up here.
    EXPECT_EQ(a.counters, b.counters);
    ASSERT_EQ(a.histograms.size(), b.histograms.size());
    for (std::size_t i = 0; i < a.histograms.size(); ++i) {
        EXPECT_EQ(a.histograms[i].first, b.histograms[i].first);
        EXPECT_EQ(a.histograms[i].second.samples(),
                  b.histograms[i].second.samples());
        EXPECT_EQ(a.histograms[i].second.sum(),
                  b.histograms[i].second.sum());
        EXPECT_EQ(a.histograms[i].second.maxValue(),
                  b.histograms[i].second.maxValue());
        EXPECT_EQ(a.histograms[i].second.buckets(),
                  b.histograms[i].second.buckets());
    }
}

std::vector<sim::RunJob>
smallGrid(const isa::Program &prog)
{
    std::vector<sim::RunJob> jobs;
    for (const char *config : {"dsre", "storesets-flush"}) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            sim::RunJob job;
            job.program = &prog;
            job.config = sim::Configs::byName(config);
            job.config.rngSeed = seed;
            job.config.chaos = chaos::ChaosParams::byProfile(
                chaos::Profile::Light, seed);
            job.config.checkInvariants = true;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

TEST(RunPool, SerialAndParallelBitIdentical)
{
    wl::KernelParams kp;
    kp.iterations = 300;
    isa::Program prog = wl::build("gzipish", kp);

    std::vector<sim::RunJob> jobs = smallGrid(prog);
    std::vector<sim::RunResult> serial =
        sim::RunPool(1).runAll(jobs);
    std::vector<sim::RunResult> parallel =
        sim::RunPool(8).runAll(jobs);

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectIdentical(serial[i], parallel[i]);
        EXPECT_TRUE(serial[i].halted);
        EXPECT_TRUE(serial[i].archMatch);
    }
}

TEST(RunPool, MixedProgramsShareOneSimulatorPerProgram)
{
    wl::KernelParams kp;
    kp.iterations = 200;
    isa::Program a = wl::build("gzipish", kp);
    isa::Program b = wl::build("mcfish", kp);

    std::vector<sim::RunJob> jobs;
    for (const isa::Program *p : {&a, &b, &a, &b}) {
        sim::RunJob job;
        job.program = p;
        job.config = sim::Configs::byName("dsre");
        jobs.push_back(std::move(job));
    }
    std::vector<sim::RunResult> results = sim::RunPool(4).runAll(jobs);
    ASSERT_EQ(results.size(), 4u);
    for (const auto &r : results) {
        EXPECT_TRUE(r.halted);
        EXPECT_TRUE(r.archMatch);
    }
    // Same program + same config = same run, wherever it sat in the
    // grid.
    expectIdentical(results[0], results[2]);
    expectIdentical(results[1], results[3]);
}

TEST(ChaosSweep, ThreadCountDoesNotChangeTheReport)
{
    wl::KernelParams kp;
    kp.iterations = 250;
    isa::Program prog = wl::build("parserish", kp);

    sim::ChaosSweepParams params;
    params.seeds = {1, 2, 3, 4};
    params.configs = {"dsre", "blind-flush"};
    params.profile = chaos::Profile::Light;

    params.threads = 1;
    sim::ChaosSweepReport serial = sim::chaosSweep(prog, params);
    params.threads = 8;
    sim::ChaosSweepReport parallel = sim::chaosSweep(prog, params);

    EXPECT_EQ(serial.failures, parallel.failures);
    EXPECT_EQ(serial.totalInjections, parallel.totalInjections);
    EXPECT_EQ(serial.totalChecks, parallel.totalChecks);
    EXPECT_EQ(serial.summary(), parallel.summary());
    ASSERT_EQ(serial.runs.size(), parallel.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        EXPECT_EQ(serial.runs[i].seed, parallel.runs[i].seed);
        EXPECT_EQ(serial.runs[i].config, parallel.runs[i].config);
        expectIdentical(serial.runs[i].result, parallel.runs[i].result);
    }
}

// ---------------------------------------------------------------
// Bench grid plumbing

TEST(BenchGrid, MatrixMatchesSerialRunOne)
{
    std::vector<bench::RunRow> rows = bench::runMatrix(
        {"gzipish"}, {"dsre", "blind-flush"}, 200, nullptr, 4);
    ASSERT_EQ(rows.size(), 2u);
    for (const auto &row : rows) {
        EXPECT_TRUE(row.ok()) << row.failure();
        bench::RunRow one = bench::runOne(row.spec);
        expectIdentical(one.result, row.result);
    }
}

TEST(BenchGrid, FailingCellIsStructuredNotFatal)
{
    // A 50-cycle watchdog cannot finish any kernel: the cell must come
    // back as a non-ok row with a printable reason, and the healthy
    // cell beside it must be untouched.
    bench::RunSpec bad;
    bad.kernel = "gzipish";
    bad.config = "dsre";
    bad.iterations = 200;
    bad.maxCycles = 50;
    bench::RunSpec good = bad;
    good.maxCycles = 500'000'000;

    std::vector<bench::RunRow> rows = bench::runSpecs({bad, good}, 2);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_FALSE(rows[0].ok());
    EXPECT_FALSE(rows[0].result.halted);
    EXPECT_NE(rows[0].failure().find("did not finish"),
              std::string::npos);
    EXPECT_TRUE(rows[1].ok()) << rows[1].failure();
}

} // namespace
