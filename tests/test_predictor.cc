/**
 * @file
 * Unit tests for the prediction machinery: the next-block (exit)
 * predictor with speculative history repair, the store-set
 * dependence predictor (training rules, map-time dependence
 * capture, LFST lifecycle), the perfect oracle, and the simple
 * blind/conservative policies.
 */

#include <gtest/gtest.h>

#include "predictor/dependence.hh"
#include "predictor/next_block.hh"
#include "predictor/oracle.hh"
#include "predictor/store_sets.hh"

namespace edge::pred {
namespace {

TEST(NextBlock, LearnsAStableExit)
{
    StatSet stats("t");
    NextBlockPredictor p(NextBlockParams{}, stats);
    // Simulate the real protocol: predict, push, later train with
    // the snapshot taken at prediction time.
    unsigned last = 0;
    for (int i = 0; i < 8; ++i) {
        last = p.predict(7);
        auto snap = p.pushSpeculativeHistory(1);
        p.update(7, 1, snap);
    }
    EXPECT_EQ(last, 1u); // converged on the loop exit
}

TEST(NextBlock, HysteresisResistsOneOff)
{
    StatSet stats("t");
    NextBlockParams params;
    params.historyBits = 0; // single context for this test
    NextBlockPredictor p(params, stats);
    for (int i = 0; i < 4; ++i)
        p.update(3, 2, 0);
    p.update(3, 0, 0); // one disagreement
    EXPECT_EQ(p.predict(3), 2u);
    // But persistent change eventually retrains.
    for (int i = 0; i < 6; ++i)
        p.update(3, 0, 0);
    EXPECT_EQ(p.predict(3), 0u);
}

TEST(NextBlock, HistorySnapshotsRestoreExactly)
{
    StatSet stats("t");
    NextBlockPredictor p(NextBlockParams{}, stats);
    unsigned before = p.predict(9);
    auto snap = p.pushSpeculativeHistory(3);
    p.pushSpeculativeHistory(1);
    p.restoreHistory(snap);
    EXPECT_EQ(p.predict(9), before);
}

TEST(NextBlock, OutcomeCounters)
{
    StatSet stats("t");
    NextBlockPredictor p(NextBlockParams{}, stats);
    p.recordOutcome(true);
    p.recordOutcome(false);
    p.recordOutcome(true);
    EXPECT_EQ(stats.counterValue("nbp.correct"), 2u);
    EXPECT_EQ(stats.counterValue("nbp.wrong"), 1u);
}

// ---------------------------------------------------------------------------
// Store sets.
// ---------------------------------------------------------------------------

class StoreSetsTest : public ::testing::Test
{
  protected:
    StoreSetsTest() : pred(StoreSetsParams{}, stats) {}

    bool
    mustWait(DynBlockSeq seq, BlockId blk, Lsid lsid, CapturedDep dep,
             const std::vector<UnresolvedStore> &older)
    {
        LoadQuery q;
        q.seq = seq;
        q.block = blk;
        q.lsid = lsid;
        q.olderUnresolved = &older;
        q.dep = dep;
        return pred.loadMustWait(q);
    }

    StatSet stats{"t"};
    StoreSetsPredictor pred;
};

TEST_F(StoreSetsTest, UntrainedLoadsNeverWait)
{
    CapturedDep dep = pred.onLoadMapped(10, 0, 1);
    EXPECT_FALSE(dep.valid);
    std::vector<UnresolvedStore> older = {{9, 9, 0, 2}};
    EXPECT_FALSE(mustWait(10, 0, 1, dep, older));
}

TEST_F(StoreSetsTest, ViolationTrainsThePair)
{
    pred.onViolation(/*load*/ 0, 1, /*store*/ 0, 2);
    EXPECT_TRUE(pred.hasSet(0, 1));
    EXPECT_TRUE(pred.hasSet(0, 2));

    // Next instance: the store maps first (fetch order), then the
    // load captures it.
    pred.onStoreMapped(20, 0, 2);
    CapturedDep dep = pred.onLoadMapped(21, 0, 1);
    ASSERT_TRUE(dep.valid);
    EXPECT_EQ(dep.seq, 20u);
    EXPECT_EQ(dep.lsid, 2u);

    std::vector<UnresolvedStore> older = {{20, 20, 0, 2}};
    EXPECT_TRUE(mustWait(21, 0, 1, dep, older));
    EXPECT_EQ(stats.counterValue("storesets.waits"), 1u);
}

TEST_F(StoreSetsTest, WaitEndsWhenDepResolves)
{
    pred.onViolation(0, 1, 0, 2);
    pred.onStoreMapped(20, 0, 2);
    CapturedDep dep = pred.onLoadMapped(21, 0, 1);
    // The store has resolved: it is no longer in olderUnresolved.
    std::vector<UnresolvedStore> older;
    EXPECT_FALSE(mustWait(21, 0, 1, dep, older));
}

TEST_F(StoreSetsTest, LfstClearsOnResolve)
{
    pred.onViolation(0, 1, 0, 2);
    pred.onStoreMapped(20, 0, 2);
    pred.onStoreResolved(20, 0, 2);
    CapturedDep dep = pred.onLoadMapped(21, 0, 1);
    EXPECT_FALSE(dep.valid); // no in-flight store instance to fear
}

TEST_F(StoreSetsTest, LoadCapturesOnlyOlderFetches)
{
    // The load maps before this iteration's store: it must not
    // capture its own block's younger store.
    pred.onViolation(0, 1, 0, 2);
    CapturedDep dep = pred.onLoadMapped(30, 0, 1);
    EXPECT_FALSE(dep.valid);
    pred.onStoreMapped(30, 0, 2); // maps after the load
}

TEST_F(StoreSetsTest, MergeAdoptsOneSet)
{
    pred.onViolation(0, 1, 0, 2); // set A: {(0,1), (0,2)}
    pred.onViolation(1, 3, 1, 4); // set B: {(1,3), (1,4)}
    pred.onViolation(0, 1, 1, 4); // merge A and B
    // Now a store from the old B set must be captured by an A load.
    pred.onStoreMapped(40, 1, 4);
    CapturedDep dep = pred.onLoadMapped(41, 0, 1);
    EXPECT_TRUE(dep.valid);
    EXPECT_EQ(dep.seq, 40u);
}

TEST_F(StoreSetsTest, FlushInvalidatesInFlightEntries)
{
    pred.onViolation(0, 1, 0, 2);
    pred.onStoreMapped(50, 0, 2);
    pred.onFlush(45);
    CapturedDep dep = pred.onLoadMapped(51, 0, 1);
    EXPECT_FALSE(dep.valid); // the captured instance was squashed
}

// ---------------------------------------------------------------------------
// Oracle.
// ---------------------------------------------------------------------------

std::vector<compiler::BlockTrace>
twoBlockTrace()
{
    std::vector<compiler::BlockTrace> trace(2);
    trace[0].block = 7;
    trace[0].exitIndex = 1;
    trace[0].memOps = {{true, 0x100, 8, 0}}; // store [0x100,0x108)
    trace[1].block = 8;
    trace[1].exitIndex = 0;
    trace[1].memOps = {{false, 0x104, 4, 0}}; // load overlaps it
    return trace;
}

TEST(OracleDb, ExposesTheCommittedPath)
{
    OracleDb db(twoBlockTrace());
    EXPECT_EQ(db.numBlocks(), 2u);
    EXPECT_EQ(db.blockAt(0), 7u);
    EXPECT_EQ(db.blockAt(1), 8u);
    EXPECT_EQ(db.blockAt(5), kInvalidBlock);
    EXPECT_EQ(db.exitAt(0), 1u);
    ASSERT_NE(db.memOp(0, 0), nullptr);
    EXPECT_TRUE(db.memOp(0, 0)->isStore);
    EXPECT_EQ(db.memOp(0, 1), nullptr);
    EXPECT_EQ(db.memOp(9, 0), nullptr);
}

TEST(OraclePredictor, WaitsExactlyOnTrueConflicts)
{
    OracleDb db(twoBlockTrace());
    StatSet stats("t");
    OraclePredictor p(db, stats);

    std::vector<UnresolvedStore> older = {{1, 0, 7, 0}};
    LoadQuery q;
    q.seq = 2;
    q.archIdx = 1;
    q.block = 8;
    q.lsid = 0;
    q.addr = 0x104;
    q.bytes = 4;
    q.olderUnresolved = &older;
    EXPECT_TRUE(p.loadMustWait(q)); // store will overlap

    q.addr = 0x200; // disjoint address: no need to wait
    EXPECT_FALSE(p.loadMustWait(q));
}

TEST(OraclePredictor, IgnoresWrongPathBlocks)
{
    OracleDb db(twoBlockTrace());
    StatSet stats("t");
    OraclePredictor p(db, stats);
    std::vector<UnresolvedStore> older = {{1, 0, 7, 0}};
    LoadQuery q;
    q.archIdx = 1;
    q.block = 99; // does not match the trace: wrong path
    q.addr = 0x104;
    q.bytes = 4;
    q.olderUnresolved = &older;
    EXPECT_FALSE(p.loadMustWait(q));
    EXPECT_EQ(stats.counterValue("oracle.off_path"), 1u);
}

// ---------------------------------------------------------------------------
// Simple policies and the factory.
// ---------------------------------------------------------------------------

TEST(Policies, BlindNeverWaits)
{
    StatSet stats("t");
    auto p = makeDependencePredictor(DepPolicy::Blind, nullptr, stats);
    std::vector<UnresolvedStore> older = {{1, 1, 0, 0}};
    LoadQuery q;
    q.olderUnresolved = &older;
    EXPECT_FALSE(p->loadMustWait(q));
    EXPECT_STREQ(p->name(), "blind");
}

TEST(Policies, ConservativeWaitsForAnyUnresolvedStore)
{
    StatSet stats("t");
    auto p = makeDependencePredictor(DepPolicy::Conservative, nullptr,
                                     stats);
    std::vector<UnresolvedStore> older = {{1, 1, 0, 0}};
    LoadQuery q;
    q.olderUnresolved = &older;
    EXPECT_TRUE(p->loadMustWait(q));
    older.clear();
    EXPECT_FALSE(p->loadMustWait(q));
}

TEST(Policies, NamesRoundTrip)
{
    EXPECT_STREQ(depPolicyName(DepPolicy::Blind), "blind");
    EXPECT_STREQ(depPolicyName(DepPolicy::Conservative), "conservative");
    EXPECT_STREQ(depPolicyName(DepPolicy::StoreSets), "store-sets");
    EXPECT_STREQ(depPolicyName(DepPolicy::Oracle), "oracle");
}

TEST(Ranges, OverlapEdgeCases)
{
    EXPECT_TRUE(rangesOverlap(0x100, 8, 0x107, 1));
    EXPECT_FALSE(rangesOverlap(0x100, 8, 0x108, 1)); // adjacent
    EXPECT_FALSE(rangesOverlap(0x108, 1, 0x100, 8));
    EXPECT_TRUE(rangesOverlap(0x100, 1, 0x100, 1));
    EXPECT_TRUE(rangesOverlap(0x100, 8, 0x0fc, 8));
}

} // namespace
} // namespace edge::pred
