/**
 * @file
 * Tests for the campaign supervisor (src/super/): the worker
 * protocol, cell identity, journal durability semantics, wait-status
 * classification of dead children, and the acceptance scenario —
 * a campaign with a SIGKILLed cell, interrupted and resumed, must
 * produce a report bit-identical to the uninterrupted run.
 *
 * This binary has a custom main(): invoked as `test_super
 * --worker-cell` it becomes a protocol worker, so the Supervisor's
 * default /proc/self/exe worker image works inside the tests and the
 * fork/exec path under test is the real one.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "super/campaign.hh"
#include "super/cell.hh"
#include "super/journal.hh"
#include "super/supervisor.hh"
#include "super/worker.hh"
#include "triage/jsonio.hh"
#include "triage/repro.hh"
#include "triage/result_json.hh"

namespace edge {
namespace {

class TempDir
{
  public:
    explicit TempDir(const std::string &name)
        : _path(std::filesystem::temp_directory_path() /
                ("edge_super_" + name + "_" +
                 std::to_string(::getpid())))
    {
        std::filesystem::create_directories(_path);
    }
    ~TempDir() { std::filesystem::remove_all(_path); }

    std::string
    file(const std::string &name) const
    {
        return (_path / name).string();
    }

  private:
    std::filesystem::path _path;
};

/** A small, fast kernel cell: parserish under one named mechanism. */
super::CellSpec
kernelCell(std::uint64_t seed, const std::string &config_name = "dsre",
           std::uint64_t iterations = 60)
{
    super::CellSpec cell;
    cell.program.kernel = "parserish";
    cell.program.params.iterations = iterations;
    cell.config = sim::Configs::byName(config_name);
    cell.config.rngSeed = seed;
    cell.maxCycles = 200'000'000;
    return cell;
}

/** What the worker should compute for `cell`, run in-process. */
sim::RunResult
runInProcess(const super::CellSpec &cell)
{
    isa::Program prog = triage::buildProgram(cell.program);
    sim::Simulator sim(std::move(prog), cell.config);
    return sim.run(cell.config, cell.maxCycles);
}

std::string
dump(const sim::RunResult &r)
{
    return triage::resultToJson(r).dumpCompact();
}

/** Single-attempt options: classification tests must observe the
 *  first death, not a retried timeout. */
super::SupervisorOptions
noRetryOptions()
{
    super::SupervisorOptions so;
    so.jobs = 2;
    so.retry.maxAttempts = 1;
    return so;
}

// --- cell identity and serialization --------------------------------

TEST(SuperCell, JsonRoundTripPreservesIdentity)
{
    super::CellSpec cell = kernelCell(7);
    cell.programHash =
        triage::programHash(triage::buildProgram(cell.program));

    std::string doc = super::cellToJson(cell).dump();
    triage::JsonValue root;
    std::string err;
    ASSERT_TRUE(triage::JsonValue::parse(doc, &root, &err)) << err;

    super::CellSpec back;
    ASSERT_TRUE(super::cellFromJson(root, &back, &err)) << err;
    EXPECT_EQ(back.program.kernel, "parserish");
    EXPECT_EQ(back.program.params.iterations, 60u);
    EXPECT_EQ(back.config.rngSeed, 7u);
    EXPECT_EQ(back.maxCycles, cell.maxCycles);
    EXPECT_EQ(super::cellHash(back), super::cellHash(cell));
}

TEST(SuperCell, HashDistinguishesSeedAndBudgetButNotCrashHook)
{
    super::CellSpec a = kernelCell(1);
    super::CellSpec b = kernelCell(2);
    EXPECT_NE(super::cellHash(a), super::cellHash(b));

    super::CellSpec c = kernelCell(1);
    c.maxCycles = a.maxCycles + 1;
    EXPECT_NE(super::cellHash(a), super::cellHash(c));

    // The crash hook is test scaffolding, not identity: a cell that
    // was killed while hooked must resume under the same hash once
    // the hook is removed.
    super::CellSpec d = kernelCell(1);
    d.testCrash = "kill";
    EXPECT_EQ(super::cellHash(a), super::cellHash(d));
}

TEST(SuperCell, EmbeddedProgramRoundTrips)
{
    isa::Program prog =
        triage::buildProgram(kernelCell(1).program);
    super::CellSpec cell;
    cell.program = triage::embeddedRef("fuzz", prog, 42);
    cell.config = sim::Configs::byName("dsre");
    cell.config.rngSeed = 3;

    std::string doc = super::cellToJson(cell).dump();
    triage::JsonValue root;
    std::string err;
    ASSERT_TRUE(triage::JsonValue::parse(doc, &root, &err)) << err;
    super::CellSpec back;
    ASSERT_TRUE(super::cellFromJson(root, &back, &err)) << err;
    EXPECT_TRUE(back.program.hasEmbedded);
    EXPECT_EQ(back.program.params.seed, 42u);
    EXPECT_EQ(super::cellHash(back), super::cellHash(cell));
}

// --- the worker protocol, on streams --------------------------------

TEST(SuperWorker, ProducesTheInProcessResultBitIdentically)
{
    super::CellSpec cell = kernelCell(5);
    std::istringstream in(super::cellToJson(cell).dump());
    std::ostringstream out;
    ASSERT_EQ(super::workerCellMain(in, out), 0);

    triage::JsonValue root;
    std::string err;
    std::string line = out.str();
    ASSERT_TRUE(triage::JsonValue::parse(line, &root, &err)) << err;
    sim::RunResult r;
    ASSERT_TRUE(triage::resultFromJson(root, &r, &err)) << err;
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.archMatch);
    EXPECT_EQ(dump(r), dump(runInProcess(cell)));
}

TEST(SuperWorker, RejectsMalformedSpecWithProtocolExit)
{
    std::istringstream in("{\"this is\": \"not a cell\"");
    std::ostringstream out;
    EXPECT_EQ(super::workerCellMain(in, out), 2);
    EXPECT_TRUE(out.str().empty());
}

TEST(SuperWorker, OversizedSpecIsBoundedProtocolError)
{
    // A spec stream past the bound must die with the structured
    // protocol exit while buffering, not buffer without limit.
    std::string big(super::kMaxCellSpecBytes + 4096, '{');
    std::istringstream in(big);
    std::ostringstream out;
    EXPECT_EQ(super::workerCellMain(in, out), 2);
    EXPECT_TRUE(out.str().empty());
}

// --- journal durability and parsing ---------------------------------

TEST(SuperJournal, AppendLoadRoundTripAndLastRecordWins)
{
    TempDir dir("journal");
    std::string path = dir.file("camp.journal");

    super::Journal j;
    std::string err;
    ASSERT_TRUE(j.open(path, &err)) << err;

    super::JournalRecord a;
    a.cell = 0xabcdef;
    a.final = false; // worker death: must be superseded on resume
    a.result.error.reason = chaos::SimError::Reason::WorkerKilled;
    a.result.rngSeed = 9;
    ASSERT_TRUE(j.append(a, &err)) << err;
    EXPECT_GT(j.lastLsn(), 0u);

    super::JournalRecord b;
    b.cell = 0xabcdef;
    b.final = true; // the re-execution that supersedes it
    b.result.halted = true;
    b.result.archMatch = true;
    b.result.rngSeed = 9;
    b.result.cycles = 1234;
    ASSERT_TRUE(j.append(b, &err)) << err;

    // append() only sequences; the group-commit flusher makes it
    // durable. flush() waits on the watermark.
    ASSERT_TRUE(j.flush(&err)) << err;
    EXPECT_GE(j.durableLsn(), j.lastLsn());

    std::vector<super::JournalRecord> recs;
    std::string build;
    ASSERT_TRUE(super::Journal::load(path, &recs, &build, &err))
        << err;
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_FALSE(build.empty());
    EXPECT_FALSE(recs[0].final);
    EXPECT_TRUE(recs[1].final);
    EXPECT_EQ(recs[1].cell, 0xabcdefu);
    EXPECT_EQ(recs[1].result.cycles, 1234u);
    EXPECT_EQ(dump(recs[1].result), dump(b.result));
}

/** The newest segment file of a log directory. */
std::string
lastSegment(const std::string &dir)
{
    std::string last;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        std::string p = e.path().string();
        if (p.size() > 5 &&
            p.compare(p.size() - 5, 5, ".elog") == 0 &&
            (last.empty() || p > last))
            last = p;
    }
    return last;
}

TEST(SuperJournal, ToleratesTornTailOnly)
{
    TempDir dir("torn");
    std::string path = dir.file("torn.journal");

    std::string err;
    {
        super::Journal j;
        ASSERT_TRUE(j.open(path, &err)) << err;
        super::JournalRecord rec;
        rec.cell = 1;
        rec.result.halted = true;
        ASSERT_TRUE(j.append(rec, &err)) << err;
        super::JournalRecord rec2 = rec;
        rec2.cell = 2;
        ASSERT_TRUE(j.append(rec2, &err)) << err;
        ASSERT_TRUE(j.flush(&err)) << err;
        // Both records landed in the same group-commit block; close
        // and reopen so each ends up in its own block.
    }
    {
        super::Journal j;
        ASSERT_TRUE(j.open(path, &err)) << err;
        super::JournalRecord rec3;
        rec3.cell = 3;
        rec3.result.halted = true;
        ASSERT_TRUE(j.append(rec3, &err)) << err;
        ASSERT_TRUE(j.flush(&err)) << err;
    }

    // Tear the newest block: chop bytes off the physical end of the
    // newest segment, exactly what a crash mid-write leaves behind.
    // The torn tail is dropped with a warning; the prefix loads.
    std::string seg = lastSegment(path);
    ASSERT_FALSE(seg.empty());
    std::uintmax_t size = std::filesystem::file_size(seg);
    std::filesystem::resize_file(seg, size - 7);

    std::vector<super::JournalRecord> recs;
    std::string build;
    ASSERT_TRUE(super::Journal::load(path, &recs, &build, &err))
        << err;
    EXPECT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].cell, 1u);
    EXPECT_EQ(recs[1].cell, 2u);

    // Reopening for append truncates the torn tail and the journal
    // keeps working; the torn record simply re-executes.
    {
        super::Journal j;
        ASSERT_TRUE(j.open(path, &err)) << err;
        EXPECT_EQ(j.loaded().size(), 2u);
        EXPECT_EQ(j.recoveryStats().tornRecords, 1u);
        super::JournalRecord rec3;
        rec3.cell = 3;
        rec3.result.halted = true;
        ASSERT_TRUE(j.append(rec3, &err)) << err;
        ASSERT_TRUE(j.flush(&err)) << err;
    }
    recs.clear();
    ASSERT_TRUE(super::Journal::load(path, &recs, &build, &err))
        << err;
    EXPECT_EQ(recs.size(), 3u);
}

TEST(SuperJournal, RejectsBitFlippedBlockNamingTheLsn)
{
    TempDir dir("crc");
    std::string path = dir.file("crc.journal");

    std::string err;
    {
        super::Journal j;
        ASSERT_TRUE(j.open(path, &err)) << err;
        super::JournalRecord a;
        a.cell = 1;
        a.final = true;
        a.result.halted = true;
        a.result.cycles = 987654321; // distinctive digits to corrupt
        ASSERT_TRUE(j.append(a, &err)) << err;
        super::JournalRecord b = a;
        b.cell = 2;
        ASSERT_TRUE(j.append(b, &err)) << err;
        ASSERT_TRUE(j.flush(&err)) << err;
    }

    // Flip one payload byte. The block is physically complete — not
    // a torn append — so even at the tail this is corruption and must
    // be rejected naming the LSN, never silently dropped.
    std::string seg = lastSegment(path);
    ASSERT_FALSE(seg.empty());
    std::string text;
    {
        std::ifstream in(seg, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }
    std::size_t pos = text.find("987654321");
    ASSERT_NE(pos, std::string::npos);
    text[pos] = '1';
    {
        std::ofstream out(seg, std::ios::trunc | std::ios::binary);
        out << text;
    }

    std::vector<super::JournalRecord> recs;
    std::string build;
    EXPECT_FALSE(super::Journal::load(path, &recs, &build, &err));
    EXPECT_NE(err.find("checksum mismatch"), std::string::npos) << err;
    EXPECT_NE(err.find("lsn"), std::string::npos) << err;
}

TEST(SuperJournal, MigratesLegacyJsonlInPlace)
{
    // A PR-5 JSONL journal given to open() is migrated: the file is
    // kept as <path>.v1 and its records re-appended into a segment
    // log at <path>, preserving the recorded build provenance.
    TempDir dir("migrate");
    std::string path = dir.file("old.journal");
    sim::RunResult r;
    r.halted = true;
    r.archMatch = true;
    r.cycles = 4242;
    {
        std::ofstream f(path);
        f << "{\"format\": \"edgesim-journal\", \"version\": 1, "
             "\"build\": \"legacy-build-line\"}\n";
        f << "{\"cell\": 5, \"final\": true, \"result\": "
          << triage::resultToJson(r).dumpCompact() << "}\n";
    }

    std::string err;
    super::Journal j;
    ASSERT_TRUE(j.open(path, &err)) << err;
    EXPECT_TRUE(std::filesystem::is_directory(path));
    EXPECT_TRUE(std::filesystem::is_regular_file(path + ".v1"));
    ASSERT_EQ(j.loaded().size(), 1u);
    EXPECT_EQ(j.loaded()[0].cell, 5u);
    EXPECT_EQ(dump(j.loaded()[0].result), dump(r));
    EXPECT_EQ(j.buildLine(), "legacy-build-line");

    // The migrated log reads back like any other.
    std::vector<super::JournalRecord> recs;
    std::string build;
    ASSERT_TRUE(super::Journal::load(path, &recs, &build, &err))
        << err;
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(build, "legacy-build-line");
}

TEST(SuperJournal, ChecksumlessRecordsStillLoad)
{
    // A journal written by a pre-checksum build: records carry no
    // `crc` field and must load vacuously.
    TempDir dir("nocrc");
    std::string path = dir.file("old.journal.jsonl");
    sim::RunResult r;
    r.halted = true;
    r.archMatch = true;
    r.cycles = 77;
    {
        std::ofstream f(path);
        f << "{\"format\": \"edgesim-journal\", \"version\": 1, "
             "\"build\": \"older-build\"}\n";
        f << "{\"cell\": 5, \"final\": true, \"result\": "
          << triage::resultToJson(r).dumpCompact() << "}\n";
    }

    std::vector<super::JournalRecord> recs;
    std::string build;
    std::string err;
    ASSERT_TRUE(super::Journal::load(path, &recs, &build, &err))
        << err;
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].cell, 5u);
    EXPECT_EQ(dump(recs[0].result), dump(r));
}

TEST(SuperJournal, RejectsNonJournalFiles)
{
    TempDir dir("notjournal");
    std::string path = dir.file("other.jsonl");
    {
        std::ofstream f(path);
        f << "{\"format\": \"something-else\", \"version\": 1}\n";
    }
    std::vector<super::JournalRecord> recs;
    std::string build;
    std::string err;
    EXPECT_FALSE(super::Journal::load(path, &recs, &build, &err));
    EXPECT_FALSE(err.empty());
}

// --- wait-status classification of dead children --------------------

sim::RunResult
runOneSupervised(const std::string &crash_mode,
                 super::SupervisorOptions so = noRetryOptions())
{
    super::CellSpec cell = kernelCell(1);
    cell.testCrash = crash_mode;
    super::Supervisor sup(std::move(so));
    std::vector<super::CellOutcome> out = sup.runAll({cell});
    EXPECT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].ran);
    return out[0].result;
}

TEST(SuperClassify, CleanCellMatchesInProcessRun)
{
    super::CellSpec cell = kernelCell(11);
    super::Supervisor sup(noRetryOptions());
    std::vector<super::CellOutcome> out = sup.runAll({cell});
    ASSERT_EQ(out.size(), 1u);
    ASSERT_TRUE(out[0].ran);
    EXPECT_FALSE(out[0].fromJournal);
    EXPECT_EQ(dump(out[0].result), dump(runInProcess(cell)));
    EXPECT_EQ(sup.completed(), 1u);
    EXPECT_EQ(sup.failures(), 0u);
}

TEST(SuperClassify, SegvIsWorkerCrash)
{
    sim::RunResult r = runOneSupervised("segv");
    EXPECT_EQ(r.error.reason, chaos::SimError::Reason::WorkerCrash);
    EXPECT_TRUE(chaos::isWorkerFailure(r.error.reason));
    EXPECT_FALSE(chaos::isTransient(r.error.reason));
}

TEST(SuperClassify, AbortIsWorkerCrash)
{
    sim::RunResult r = runOneSupervised("abort");
    EXPECT_EQ(r.error.reason, chaos::SimError::Reason::WorkerCrash);
}

TEST(SuperClassify, SigkillIsWorkerKilled)
{
    sim::RunResult r = runOneSupervised("kill");
    EXPECT_EQ(r.error.reason, chaos::SimError::Reason::WorkerKilled);
}

TEST(SuperClassify, HangPastDeadlineIsWorkerTimeout)
{
    super::SupervisorOptions so = noRetryOptions();
    so.cellTimeoutMs = 300;
    sim::RunResult r = runOneSupervised("hang", so);
    EXPECT_EQ(r.error.reason, chaos::SimError::Reason::WorkerTimeout);
    EXPECT_TRUE(chaos::isTransient(r.error.reason));
}

TEST(SuperClassify, CleanExitWithoutResultIsWorkerProtocol)
{
    sim::RunResult r = runOneSupervised("exit3");
    EXPECT_EQ(r.error.reason,
              chaos::SimError::Reason::WorkerProtocol);
    r = runOneSupervised("garbage");
    EXPECT_EQ(r.error.reason,
              chaos::SimError::Reason::WorkerProtocol);
}

TEST(SuperClassify, WorkerDeathCapturesRepro)
{
    TempDir dir("repro");
    super::SupervisorOptions so = noRetryOptions();
    so.reproDir = dir.file("");
    super::CellSpec cell = kernelCell(1);
    cell.testCrash = "kill";
    super::Supervisor sup(std::move(so));
    std::vector<super::CellOutcome> out = sup.runAll({cell});
    ASSERT_EQ(out.size(), 1u);
    ASSERT_FALSE(out[0].reproPath.empty());

    triage::ReproSpec spec;
    std::string err;
    ASSERT_TRUE(triage::load(out[0].reproPath, &spec, &err)) << err;
    EXPECT_EQ(spec.program.kernel, "parserish");
    EXPECT_FALSE(spec.build.empty());
}

// --- journaled campaigns: resume semantics --------------------------

TEST(SuperResume, FinalRecordsReplayWorkerDeathsReExecute)
{
    TempDir dir("resume");
    std::string journal = dir.file("grid.journal.jsonl");

    std::vector<super::CellSpec> cells = {
        kernelCell(1), kernelCell(2), kernelCell(3)};

    // The uninterrupted truth, straight from the simulator.
    std::vector<std::string> want;
    for (const super::CellSpec &c : cells)
        want.push_back(dump(runInProcess(c)));

    // First session: cell 1 is SIGKILLed mid-campaign.
    {
        super::SupervisorOptions so = noRetryOptions();
        so.journalPath = journal;
        std::vector<super::CellSpec> hooked = cells;
        hooked[1].testCrash = "kill";
        super::Supervisor sup(std::move(so));
        std::vector<super::CellOutcome> out = sup.runAll(hooked);
        ASSERT_EQ(out.size(), 3u);
        EXPECT_EQ(out[1].result.error.reason,
                  chaos::SimError::Reason::WorkerKilled);
        EXPECT_EQ(sup.failures(), 1u);
    }

    // Second session: resume. The two clean cells replay from the
    // journal; the killed cell — its record is non-final — is
    // selectively re-executed, now without the crash hook.
    {
        super::SupervisorOptions so = noRetryOptions();
        so.journalPath = journal;
        so.resume = true;
        super::Supervisor sup(std::move(so));
        std::vector<super::CellOutcome> out = sup.runAll(cells);
        ASSERT_EQ(out.size(), 3u);
        EXPECT_TRUE(out[0].fromJournal);
        EXPECT_FALSE(out[1].fromJournal);
        EXPECT_TRUE(out[2].fromJournal);
        EXPECT_EQ(sup.skipped(), 2u);
        EXPECT_EQ(sup.failures(), 0u);
        for (std::size_t i = 0; i < cells.size(); ++i)
            EXPECT_EQ(dump(out[i].result), want[i]) << "cell " << i;
    }

    // Third session: everything is final now; nothing re-executes,
    // and the replayed results are still bit-identical.
    {
        super::SupervisorOptions so = noRetryOptions();
        so.journalPath = journal;
        so.resume = true;
        super::Supervisor sup(std::move(so));
        std::vector<super::CellOutcome> out = sup.runAll(cells);
        ASSERT_EQ(out.size(), 3u);
        EXPECT_EQ(sup.skipped(), 3u);
        EXPECT_EQ(sup.completed(), 0u);
        for (std::size_t i = 0; i < cells.size(); ++i)
            EXPECT_EQ(dump(out[i].result), want[i]) << "cell " << i;
    }
}

TEST(SuperResume, StopLeavesUnrunCellsResumable)
{
    TempDir dir("stop");
    std::string journal = dir.file("stop.journal.jsonl");
    std::vector<super::CellSpec> cells = {
        kernelCell(1), kernelCell(2), kernelCell(3), kernelCell(4)};

    std::vector<std::string> want;
    for (const super::CellSpec &c : cells)
        want.push_back(dump(runInProcess(c)));

    // A stop requested before the loop starts: nothing runs, the
    // outcome vector is complete but every cell is marked !ran.
    {
        super::SupervisorOptions so = noRetryOptions();
        so.journalPath = journal;
        super::Supervisor sup(std::move(so));
        sup.requestStop();
        std::vector<super::CellOutcome> out = sup.runAll(cells);
        ASSERT_EQ(out.size(), 4u);
        for (const super::CellOutcome &o : out)
            EXPECT_FALSE(o.ran);
        EXPECT_FALSE(sup.resumeHint().empty());
    }

    // Resume completes the whole grid bit-identically.
    {
        super::SupervisorOptions so = noRetryOptions();
        so.journalPath = journal;
        so.resume = true;
        super::Supervisor sup(std::move(so));
        std::vector<super::CellOutcome> out = sup.runAll(cells);
        ASSERT_EQ(out.size(), 4u);
        for (std::size_t i = 0; i < cells.size(); ++i) {
            EXPECT_TRUE(out[i].ran);
            EXPECT_EQ(dump(out[i].result), want[i]) << "cell " << i;
        }
    }
}

TEST(SuperResume, SignalHandlerSetsGlobalStop)
{
    super::installStopHandlers();
    super::clearStopSignal();
    EXPECT_EQ(super::stopSignal(), 0);
    std::raise(SIGTERM);
    EXPECT_EQ(super::stopSignal(), SIGTERM);

    super::Supervisor sup(noRetryOptions());
    EXPECT_TRUE(sup.stopRequested());
    super::clearStopSignal();
    EXPECT_EQ(super::stopSignal(), 0);
}

// --- the isolated sweep twin ----------------------------------------

TEST(SuperCampaign, IsolatedSweepReportIsByteIdentical)
{
    sim::ChaosSweepParams params;
    params.seeds = {1, 2};
    params.configs = {"dsre"};
    params.maxCycles = 200'000'000;
    params.retry.maxAttempts = 1;

    triage::ProgramRef ref;
    ref.kernel = "parserish";
    ref.params.iterations = 60;
    isa::Program prog = triage::buildProgram(ref);

    sim::ChaosSweepReport inproc = sim::chaosSweep(prog, params);

    super::SupervisorOptions so = noRetryOptions();
    super::Supervisor sup(std::move(so));
    bool interrupted = true;
    sim::ChaosSweepReport isolated =
        super::chaosSweepIsolated(params, ref, sup, &interrupted);

    EXPECT_FALSE(interrupted);
    ASSERT_EQ(isolated.runs.size(), inproc.runs.size());
    EXPECT_EQ(isolated.summary(), inproc.summary());
    for (std::size_t i = 0; i < inproc.runs.size(); ++i) {
        EXPECT_EQ(isolated.runs[i].seed, inproc.runs[i].seed);
        EXPECT_EQ(isolated.runs[i].config, inproc.runs[i].config);
        EXPECT_EQ(dump(isolated.runs[i].result),
                  dump(inproc.runs[i].result))
            << "cell " << i;
    }
    EXPECT_EQ(isolated.totalInjections, inproc.totalInjections);
    EXPECT_EQ(isolated.totalChecks, inproc.totalChecks);
}

} // namespace
} // namespace edge

int
main(int argc, char **argv)
{
    // The Supervisor's default worker image is /proc/self/exe — this
    // binary. Dispatch the worker protocol before gtest sees argv.
    if (argc >= 2 && std::strcmp(argv[1], "--worker-cell") == 0)
        return edge::super::workerCellMain(std::cin, std::cout);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
