/**
 * @file
 * Failure-triage tests: repro capture of failing chaos-sweep cells
 * and bit-identical replay, ddmin schedule minimization (synthetic
 * predicate and end-to-end on a real failure), the transient-only
 * retry policy, and quarantine keeping a grid green. The heavyweight
 * planted-failure cases reuse the mutation machinery, so most of
 * this file is gated on EDGE_MUTATIONS like the mutation tests.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "bench/bench_util.hh"
#include "sim/run_pool.hh"
#include "sim/sweep.hh"
#include "triage/jsonio.hh"
#include "triage/minimize.hh"
#include "triage/repro.hh"
#include "workloads/workloads.hh"

namespace edge {
namespace {

/** Fresh scratch directory under the test's working dir. */
class TempDir
{
  public:
    explicit TempDir(const std::string &name)
        : _path(std::filesystem::temp_directory_path() /
                ("edgesim-triage-" + name))
    {
        std::filesystem::remove_all(_path);
        std::filesystem::create_directories(_path);
    }

    ~TempDir() { std::filesystem::remove_all(_path); }

    std::string str() const { return _path.string(); }

  private:
    std::filesystem::path _path;
};

// ---------------------------------------------------------------------
// JSON round trips.
// ---------------------------------------------------------------------

TEST(TriageJson, ScalarAndContainerRoundTrip)
{
    triage::JsonValue root = triage::JsonValue::object();
    root.set("u", triage::JsonValue::u64(0xffffffffffffffffULL));
    root.set("i", triage::JsonValue::i64(-42));
    root.set("b", triage::JsonValue::boolean(true));
    root.set("s", triage::JsonValue::str("line\n\"quoted\"\ttab"));
    triage::JsonValue arr = triage::JsonValue::array();
    arr.push(triage::JsonValue::u64(1));
    arr.push(triage::JsonValue::str("two"));
    root.set("a", std::move(arr));

    triage::JsonValue parsed;
    std::string err;
    ASSERT_TRUE(
        triage::JsonValue::parse(root.dump(), &parsed, &err)) << err;
    // The max uint64 is the value a double-backed parser would lose.
    EXPECT_EQ(parsed.getU64("u"), 0xffffffffffffffffULL);
    EXPECT_EQ(parsed.get("i")->asI64(), -42);
    EXPECT_TRUE(parsed.getBool("b"));
    EXPECT_EQ(parsed.getString("s"), "line\n\"quoted\"\ttab");
    ASSERT_NE(parsed.get("a"), nullptr);
    EXPECT_EQ(parsed.get("a")->items().size(), 2u);
    EXPECT_EQ(parsed.get("a")->items()[0].asU64(), 1u);
}

TEST(TriageJson, MalformedInputIsRejectedWithPosition)
{
    triage::JsonValue out;
    std::string err;
    EXPECT_FALSE(triage::JsonValue::parse("{\"a\": }", &out, &err));
    EXPECT_NE(err.find("offset"), std::string::npos);
    EXPECT_FALSE(triage::JsonValue::parse("[1, 2", &out, &err));
    EXPECT_FALSE(triage::JsonValue::parse("{} trailing", &out, &err));
}

TEST(TriageRepro, SpecSurvivesSaveAndLoad)
{
    triage::ReproSpec spec;
    spec.program.kernel = "parserish";
    spec.program.params.iterations = 150;
    spec.program.params.seed = 5;
    spec.programHash = 0xdeadbeefcafef00dULL;
    spec.config = sim::Configs::storeSetsDsre();
    spec.config.rngSeed = 5;
    spec.config.chaos =
        chaos::ChaosParams::byProfile(chaos::Profile::Lsq, 5);
    spec.config.chaos.filterSchedule = true;
    spec.config.chaos.allowedEvents = {3, 17, 99};
    spec.config.wallDeadlineMs = 1234;
    spec.maxCycles = 777'777;
    spec.error.reason = chaos::SimError::Reason::InvariantViolation;
    spec.error.invariant = "value-identity-squash";
    spec.error.message = "node 7 re-sent an identical (value, state)";
    spec.error.cycle = 4242;
    spec.error.seq = 12;
    spec.error.node = 7;
    spec.error.trace = {"cycle 1 deliver", "cycle 2 send"};
    spec.halted = false;
    spec.archMatch = false;
    spec.retries = 2;
    chaos::FaultEvent ev;
    ev.ordinal = 9;
    ev.site = chaos::FaultEvent::Site::Spurious;
    ev.magnitude = 0;
    spec.schedule.push_back(ev);

    TempDir dir("roundtrip");
    std::string path = dir.str() + "/spec.repro.json";
    std::string err;
    ASSERT_TRUE(triage::save(spec, path, &err)) << err;

    triage::ReproSpec back;
    ASSERT_TRUE(triage::load(path, &back, &err)) << err;
    EXPECT_EQ(back.program.kernel, "parserish");
    EXPECT_EQ(back.program.params.iterations, 150u);
    EXPECT_EQ(back.program.params.seed, 5u);
    EXPECT_EQ(back.programHash, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(back.config.policy, pred::DepPolicy::StoreSets);
    EXPECT_EQ(back.config.lsq.recovery, lsq::Recovery::Dsre);
    EXPECT_EQ(back.config.rngSeed, 5u);
    EXPECT_EQ(back.config.chaos.profile, chaos::Profile::Lsq);
    EXPECT_TRUE(back.config.chaos.filterSchedule);
    EXPECT_EQ(back.config.chaos.allowedEvents,
              (std::vector<std::uint64_t>{3, 17, 99}));
    EXPECT_EQ(back.config.wallDeadlineMs, 1234u);
    EXPECT_EQ(back.maxCycles, 777'777u);
    EXPECT_EQ(back.error.reason,
              chaos::SimError::Reason::InvariantViolation);
    EXPECT_EQ(back.error.invariant, "value-identity-squash");
    EXPECT_EQ(back.error.cycle, 4242u);
    EXPECT_EQ(back.error.node, 7u);
    EXPECT_EQ(back.error.trace.size(), 2u);
    EXPECT_EQ(back.retries, 2u);
    ASSERT_EQ(back.schedule.size(), 1u);
    EXPECT_EQ(back.schedule[0], ev);
}

TEST(TriageRepro, ProgramHashTracksContent)
{
    wl::KernelParams kp;
    kp.iterations = 50;
    std::uint64_t a = triage::programHash(wl::build("gzipish", kp));
    std::uint64_t b = triage::programHash(wl::build("gzipish", kp));
    EXPECT_EQ(a, b);
    kp.seed = 2;
    std::uint64_t c = triage::programHash(wl::build("gzipish", kp));
    EXPECT_NE(a, c);
}

// ---------------------------------------------------------------------
// Exit-code and transiency mapping (satellite a).
// ---------------------------------------------------------------------

TEST(TriageExitCodes, DistinctPerReasonAndDocumented)
{
    using Reason = chaos::SimError::Reason;
    EXPECT_EQ(chaos::exitCodeFor(Reason::None), 0);
    EXPECT_EQ(chaos::exitCodeFor(Reason::Watchdog), 10);
    EXPECT_EQ(chaos::exitCodeFor(Reason::InvariantViolation), 11);
    EXPECT_EQ(chaos::exitCodeFor(Reason::ProtocolPanic), 12);
    EXPECT_EQ(chaos::exitCodeFor(Reason::Livelock), 13);
    EXPECT_EQ(chaos::exitCodeFor(Reason::HostDeadline), 14);

    std::set<int> codes;
    for (Reason r : {Reason::None, Reason::Watchdog,
                     Reason::InvariantViolation, Reason::ProtocolPanic,
                     Reason::Livelock, Reason::HostDeadline}) {
        codes.insert(chaos::exitCodeFor(r));
        EXPECT_EQ(chaos::reasonByName(chaos::reasonName(r)), r);
    }
    EXPECT_EQ(codes.size(), 6u);

    EXPECT_TRUE(chaos::isTransient(Reason::HostDeadline));
    for (Reason r : {Reason::None, Reason::Watchdog,
                     Reason::InvariantViolation, Reason::ProtocolPanic,
                     Reason::Livelock})
        EXPECT_FALSE(chaos::isTransient(r)) << chaos::reasonName(r);
}

// ---------------------------------------------------------------------
// ddmin on a synthetic predicate: 5 planted events, failure iff
// {1, 3} is a subset — must converge to exactly {1, 3}.
// ---------------------------------------------------------------------

TEST(TriageMinimize, SyntheticPredicateConvergesToPlantedPair)
{
    std::vector<chaos::FaultEvent> schedule;
    for (std::uint64_t i = 0; i < 5; ++i) {
        chaos::FaultEvent ev;
        ev.ordinal = i;
        ev.site = chaos::FaultEvent::Site::HopDelay;
        ev.magnitude = i + 1;
        schedule.push_back(ev);
    }
    triage::SubsetTest fails_with_1_and_3 =
        [](const std::vector<std::uint64_t> &subset) {
            bool has1 = false, has3 = false;
            for (std::uint64_t o : subset) {
                has1 = has1 || o == 1;
                has3 = has3 || o == 3;
            }
            return has1 && has3;
        };

    triage::MinimizeResult m =
        triage::minimizeSchedule(schedule, fails_with_1_and_3);
    EXPECT_TRUE(m.converged);
    EXPECT_EQ(m.ordinals, (std::vector<std::uint64_t>{1, 3}));
    ASSERT_EQ(m.schedule.size(), 2u);
    EXPECT_EQ(m.schedule[0].ordinal, 1u);
    EXPECT_EQ(m.schedule[1].ordinal, 3u);
    EXPECT_GT(m.testsRun, 0u);
}

TEST(TriageMinimize, ScheduleIndependentFailureMinimizesToEmpty)
{
    std::vector<chaos::FaultEvent> schedule;
    for (std::uint64_t i = 0; i < 4; ++i) {
        chaos::FaultEvent ev;
        ev.ordinal = i;
        schedule.push_back(ev);
    }
    triage::SubsetTest always_fails =
        [](const std::vector<std::uint64_t> &) { return true; };
    triage::MinimizeResult m =
        triage::minimizeSchedule(schedule, always_fails);
    EXPECT_TRUE(m.converged);
    EXPECT_TRUE(m.ordinals.empty());
    // Two probes (empty set + full set) settle it.
    EXPECT_EQ(m.testsRun, 2u);
}

TEST(TriageMinimize, DeterministicAcrossThreadCounts)
{
    std::vector<chaos::FaultEvent> schedule;
    for (std::uint64_t i = 0; i < 12; ++i) {
        chaos::FaultEvent ev;
        ev.ordinal = i;
        schedule.push_back(ev);
    }
    // Failure iff at least two of {2, 5, 9} survive: several minimal
    // sets exist, so only a deterministic reduction path makes the
    // answer thread-count-independent.
    triage::SubsetTest two_of_three =
        [](const std::vector<std::uint64_t> &subset) {
            unsigned hits = 0;
            for (std::uint64_t o : subset)
                hits += (o == 2 || o == 5 || o == 9) ? 1 : 0;
            return hits >= 2;
        };
    triage::MinimizeOptions serial;
    serial.threads = 1;
    triage::MinimizeOptions wide;
    wide.threads = 8;
    triage::MinimizeResult a =
        triage::minimizeSchedule(schedule, two_of_three, serial);
    triage::MinimizeResult b =
        triage::minimizeSchedule(schedule, two_of_three, wide);
    EXPECT_TRUE(a.converged);
    EXPECT_EQ(a.ordinals, b.ordinals);
    EXPECT_EQ(a.ordinals.size(), 2u);
}

// ---------------------------------------------------------------------
// Retry policy: transient host failures are retried, deterministic
// failures never are.
// ---------------------------------------------------------------------

TEST(TriageRetry, HostDeadlineIsRetriedToExhaustion)
{
    // A 0-cycle... rather, a 1 ms wall deadline cannot complete the
    // kernel, so every attempt fails with HostDeadline and the policy
    // runs out of attempts.
    wl::KernelParams kp;
    kp.iterations = 2000;
    isa::Program prog = wl::build("mcfish", kp);
    sim::RunJob job;
    job.program = &prog;
    job.config = sim::Configs::dsre();
    job.config.wallDeadlineMs = 1;

    sim::RetryPolicy retry;
    retry.maxAttempts = 3;
    retry.backoffMs = 1;
    sim::RunPool pool(2);
    std::vector<sim::RunResult> results = pool.runAll({job}, retry);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].error.reason,
              chaos::SimError::Reason::HostDeadline);
    EXPECT_EQ(results[0].retries, 2u);
}

TEST(TriageRetry, CleanRunHasZeroRetries)
{
    wl::KernelParams kp;
    kp.iterations = 60;
    isa::Program prog = wl::build("gzipish", kp);
    sim::RunJob job;
    job.program = &prog;
    job.config = sim::Configs::dsre();
    sim::RunPool pool(2);
    std::vector<sim::RunResult> results = pool.runAll({job});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].error.ok());
    EXPECT_EQ(results[0].retries, 0u);
}

#ifdef EDGE_MUTATIONS

/** The planted deterministic failure every triage test drives:
 *  SkipSquash under the lsq chaos profile at seed 5, which the
 *  invariant checker reports as value-identity-squash. */
sim::ChaosSweepParams
plantedSweep(unsigned threads)
{
    sim::ChaosSweepParams sp;
    sp.seeds = {5};
    sp.configs = {"dsre"};
    sp.profile = chaos::Profile::Lsq;
    sp.checkInvariants = true;
    sp.threads = threads;
    sp.mutation = chaos::Mutation::SkipSquash;
    sp.mutationNode = ~0u;
    return sp;
}

triage::ProgramRef
plantedProgram()
{
    triage::ProgramRef ref;
    ref.kernel = "parserish";
    ref.params.iterations = 150;
    ref.params.seed = 1;
    return ref;
}

TEST(TriageRetry, DeterministicInvariantFailureIsNeverRetried)
{
    triage::ProgramRef ref = plantedProgram();
    isa::Program prog = triage::buildProgram(ref);
    sim::RunJob job;
    job.program = &prog;
    job.config = sim::Configs::dsre();
    job.config.rngSeed = 5;
    job.config.chaos =
        chaos::ChaosParams::byProfile(chaos::Profile::Lsq, 5);
    job.config.chaos.mutation = chaos::Mutation::SkipSquash;
    job.config.chaos.mutationNode = ~0u;
    job.config.checkInvariants = true;

    sim::RetryPolicy retry;
    retry.maxAttempts = 5;
    retry.backoffMs = 0;
    sim::RunPool pool(2);
    std::vector<sim::RunResult> results = pool.runAll({job}, retry);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].error.reason,
              chaos::SimError::Reason::InvariantViolation);
    EXPECT_EQ(results[0].retries, 0u);
}

// ---------------------------------------------------------------------
// The acceptance flow: a planted mutation failure captured from a
// -j 8 sweep replays bit-identically at -j 1 (same error kind, same
// invariant rule, same failure cycle).
// ---------------------------------------------------------------------

TEST(TriageReplay, CapturedParallelSweepFailureReplaysBitIdentically)
{
    triage::ProgramRef ref = plantedProgram();
    isa::Program prog = triage::buildProgram(ref);
    sim::ChaosSweepParams sp = plantedSweep(/*threads=*/8);
    sim::ChaosSweepReport rep = sim::chaosSweep(prog, sp);
    ASSERT_FALSE(rep.allConverged());

    TempDir dir("replay");
    std::size_t written = triage::captureSweepFailures(
        rep, ref, sp.maxCycles, dir.str());
    ASSERT_EQ(written, rep.failures);

    for (const sim::ChaosSweepOutcome &o : rep.runs) {
        if (o.converged())
            continue;
        ASSERT_FALSE(o.reproPath.empty());
        EXPECT_NE(rep.summary().find(o.reproPath), std::string::npos)
            << "summary must print the replay command";

        triage::ReproSpec spec;
        std::string err;
        ASSERT_TRUE(triage::load(o.reproPath, &spec, &err)) << err;
        EXPECT_EQ(spec.error.reason,
                  chaos::SimError::Reason::InvariantViolation);
        EXPECT_EQ(spec.error.invariant, "value-identity-squash");
        EXPECT_FALSE(spec.schedule.empty())
            << "the fault schedule is the minimizer's universe";

        // The serial replay IS the -j 1 leg: one run, one thread.
        sim::RunResult replayed = triage::replay(spec);
        EXPECT_EQ(replayed.error.reason, o.result.error.reason);
        EXPECT_EQ(replayed.error.invariant, o.result.error.invariant);
        EXPECT_EQ(replayed.error.cycle, o.result.error.cycle);
        EXPECT_TRUE(triage::sameSignature(spec, replayed));
    }
}

// ---------------------------------------------------------------------
// End-to-end minimization of the real planted failure: the schedule
// must shrink to <= 2 events that still fail with the same invariant,
// and masking everything must make the run pass.
// ---------------------------------------------------------------------

TEST(TriageMinimize, RealFailureScheduleShrinksToAtMostTwoEvents)
{
    triage::ProgramRef ref = plantedProgram();
    isa::Program prog = triage::buildProgram(ref);
    sim::ChaosSweepParams sp = plantedSweep(/*threads=*/4);
    sim::ChaosSweepReport rep = sim::chaosSweep(prog, sp);
    ASSERT_FALSE(rep.allConverged());

    TempDir dir("minimize");
    triage::captureSweepFailures(rep, ref, sp.maxCycles, dir.str());
    const sim::ChaosSweepOutcome *failing = nullptr;
    for (const sim::ChaosSweepOutcome &o : rep.runs)
        if (!o.converged())
            failing = &o;
    ASSERT_NE(failing, nullptr);

    triage::ReproSpec spec;
    std::string err;
    ASSERT_TRUE(triage::load(failing->reproPath, &spec, &err)) << err;
    ASSERT_GE(spec.schedule.size(), 5u)
        << "the planted failure should offer a non-trivial schedule";

    triage::MinimizeOptions mo;
    mo.threads = 4;
    triage::MinimizeResult m = triage::minimizeRepro(spec, mo);
    EXPECT_TRUE(m.converged);
    EXPECT_LE(m.schedule.size(), 2u);
    EXPECT_GE(m.schedule.size(), 1u)
        << "SkipSquash only fires on injected spurious waves, so an "
           "empty schedule must pass";

    // The minimized schedule still reproduces the failure kind...
    triage::ReproSpec minimized = triage::applySchedule(spec, m);
    sim::RunResult with_min = triage::replay(minimized);
    EXPECT_TRUE(triage::sameFailureKind(spec, with_min));

    // ...and the empty schedule does not (the faults were necessary).
    triage::ReproSpec none = spec;
    none.config.chaos.filterSchedule = true;
    none.config.chaos.allowedEvents.clear();
    sim::RunResult with_none = triage::replay(none);
    EXPECT_FALSE(triage::sameFailureKind(spec, with_none));
}

// ---------------------------------------------------------------------
// Quarantine: a grid with one deterministically failing cell reports
// it and keeps every other cell's result (satellite f).
// ---------------------------------------------------------------------

TEST(TriageQuarantine, FailingCellDoesNotPoisonTheGrid)
{
    bench::RunSpec bad;
    bad.kernel = "parserish";
    bad.config = "dsre";
    bad.iterations = 150;
    bad.seed = 1;
    bad.tweak = [](core::MachineConfig &cfg) {
        cfg.rngSeed = 5;
        cfg.chaos =
            chaos::ChaosParams::byProfile(chaos::Profile::Lsq, 5);
        cfg.chaos.mutation = chaos::Mutation::SkipSquash;
        cfg.chaos.mutationNode = ~0u;
        cfg.checkInvariants = true;
    };
    bench::RunSpec good;
    good.kernel = "gzipish";
    good.config = "dsre";
    good.iterations = 60;

    std::vector<bench::RunRow> rows =
        bench::runSpecs({bad, good}, /*threads=*/4);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_FALSE(rows[0].ok());
    EXPECT_TRUE(rows[0].quarantined());
    EXPECT_FALSE(rows[0].fatalTransient());
    EXPECT_TRUE(rows[1].ok()) << rows[1].failure();

    // finishBench captures the repro, reports the failure, and exits
    // nonzero — without losing the good cell.
    TempDir dir("quarantine");
    bench::BenchArgs args;
    args.start = std::chrono::steady_clock::now();
    args.reproDir = dir.str();
    args.jsonPath = dir.str() + "/bench.json";
    EXPECT_EQ(bench::finishBench("test_triage", args, rows), 1);
    EXPECT_FALSE(rows[0].reproPath.empty());
    EXPECT_TRUE(std::filesystem::exists(rows[0].reproPath));
    EXPECT_TRUE(rows[1].reproPath.empty());

    // The JSON report carries the repro path and the quarantine
    // tally.
    std::ifstream in(args.jsonPath);
    std::stringstream buf;
    buf << in.rdbuf();
    triage::JsonValue json;
    std::string err;
    ASSERT_TRUE(triage::JsonValue::parse(buf.str(), &json, &err))
        << err;
    EXPECT_EQ(json.getU64("quarantined"), 1u);
    EXPECT_EQ(json.getU64("fatal"), 0u);
    const triage::JsonValue *cells = json.get("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->items().size(), 2u);
    EXPECT_EQ(cells->items()[0].getString("repro"),
              rows[0].reproPath);
    EXPECT_FALSE(cells->items()[0].getBool("ok"));
    EXPECT_TRUE(cells->items()[1].getBool("ok"));

    // The captured repro replays to the same deterministic failure.
    triage::ReproSpec spec;
    ASSERT_TRUE(triage::load(rows[0].reproPath, &spec, &err)) << err;
    sim::RunResult replayed = triage::replay(spec);
    EXPECT_TRUE(triage::sameSignature(spec, replayed));
}

#endif // EDGE_MUTATIONS

} // namespace
} // namespace edge
