/**
 * @file
 * Unit tests for the common utilities: string formatting, the
 * statistics package, the deterministic RNG, and the ValState
 * algebra the DSRE protocol builds on.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "common/types.hh"

namespace edge {
namespace {

TEST(Strutil, FormatsLikePrintf)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(strfmt("%05u", 7u), "00007");
    EXPECT_EQ(strfmt("%.3f", 1.5), "1.500");
}

TEST(Strutil, FormatsLongStringsWithoutTruncation)
{
    std::string big(5000, 'a');
    EXPECT_EQ(strfmt("%s!", big.c_str()).size(), big.size() + 1);
}

TEST(Strutil, JoinAndSplitRoundTrip)
{
    std::vector<std::string> parts = {"a", "bb", "", "ccc"};
    EXPECT_EQ(join(parts, ","), "a,bb,,ccc");
    EXPECT_EQ(split("a,bb,,ccc", ','), parts);
    EXPECT_EQ(split("", ','), std::vector<std::string>{""});
}

TEST(Strutil, Padding)
{
    EXPECT_EQ(padLeft("x", 3), "  x");
    EXPECT_EQ(padRight("x", 3), "x  ");
    EXPECT_EQ(padLeft("abcd", 3), "abcd"); // never truncates
}

TEST(Stats, CounterBasics)
{
    StatSet set("t");
    Counter &c = set.counter("a.b", "desc");
    ++c;
    c += 4;
    EXPECT_EQ(set.counterValue("a.b"), 5u);
    EXPECT_TRUE(set.hasCounter("a.b"));
    EXPECT_FALSE(set.hasCounter("a.c"));
}

TEST(Stats, CounterIsSharedByName)
{
    StatSet set("t");
    Counter &c1 = set.counter("x", "d");
    Counter &c2 = set.counter("x", "other");
    ++c1;
    ++c2;
    EXPECT_EQ(set.counterValue("x"), 2u);
    EXPECT_EQ(&c1, &c2);
}

TEST(Stats, HistogramMoments)
{
    StatSet set("t");
    Histogram &h = set.histogram("h", "d");
    h.sample(0);
    h.sample(1);
    h.sample(2);
    h.sample(1024);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.sum(), 1027u);
    EXPECT_EQ(h.maxValue(), 1024u);
    EXPECT_DOUBLE_EQ(h.mean(), 1027.0 / 4.0);
}

TEST(Stats, HistogramPercentiles)
{
    Histogram h;
    for (int i = 0; i < 90; ++i)
        h.sample(1);
    for (int i = 0; i < 10; ++i)
        h.sample(64);
    EXPECT_EQ(h.approxPercentile(0.5), 1u);
    EXPECT_GE(h.approxPercentile(0.99), 33u); // bucket upper bound
    EXPECT_EQ(h.approxPercentile(0.0), 0u);
}

TEST(Stats, ResetClearsEverything)
{
    StatSet set("t");
    Counter &c = set.counter("c", "d");
    Histogram &h = set.histogram("h", "d");
    c += 10;
    h.sample(5);
    set.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.samples(), 0u);
}

TEST(Stats, DumpMentionsEveryStat)
{
    StatSet set("myset");
    set.counter("alpha", "the alpha") += 3;
    set.histogram("beta", "the beta").sample(7);
    std::string d = set.dump();
    EXPECT_NE(d.find("myset"), std::string::npos);
    EXPECT_NE(d.find("alpha"), std::string::npos);
    EXPECT_NE(d.find("beta"), std::string::npos);
    EXPECT_NE(d.find("the alpha"), std::string::npos);
}

TEST(Stats, CounterNamesSorted)
{
    StatSet set("t");
    set.counter("zz", "");
    set.counter("aa", "");
    auto names = set.counterNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "aa");
    EXPECT_EQ(names[1], "zz");
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(123);
    for (int i = 0; i < 100; ++i)
        differs = differs || (a2.next() != c.next());
    EXPECT_TRUE(differs);
}

TEST(Rng, RangesRespectBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(17), 17u);
        auto v = r.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ChanceIsRoughlyCalibrated)
{
    Rng r(99);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(1, 4);
    EXPECT_NEAR(hits, 2500, 250);
}

TEST(Types, AndStateAlgebra)
{
    using enum ValState;
    EXPECT_EQ(andState(Final, Final), Final);
    EXPECT_EQ(andState(Final, Spec), Spec);
    EXPECT_EQ(andState(Spec, Final), Spec);
    EXPECT_EQ(andState(Spec, Spec), Spec);
}

TEST(Types, DoubleWordRoundTrip)
{
    for (double d : {0.0, 1.5, -3.25, 1e300, -1e-300}) {
        EXPECT_EQ(wordToDouble(doubleToWord(d)), d);
    }
}

} // namespace
} // namespace edge
