/**
 * @file
 * Unit tests for the EDGE ISA layer: opcode metadata, the
 * functional semantics of every opcode (parameterised sweep),
 * block validation rules, and the disassembler.
 */

#include <gtest/gtest.h>

#include <limits>

#include "isa/block.hh"
#include "isa/opcode.hh"
#include "isa/program.hh"

namespace edge::isa {
namespace {

TEST(OpInfo, TableIsComplete)
{
    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NUM_OPCODES);
         ++i) {
        const OpInfo &info = opInfo(static_cast<Opcode>(i));
        EXPECT_NE(info.name, nullptr);
        EXPECT_LE(info.numOps, 3u);
        if (info.isLoad || info.isStore)
            EXPECT_GT(info.accessBytes, 0u);
        else
            EXPECT_EQ(info.accessBytes, 0u);
        EXPECT_FALSE(info.isLoad && info.isStore);
    }
}

TEST(OpInfo, MemoryOpcodeClassification)
{
    EXPECT_TRUE(isLoad(Opcode::LDB));
    EXPECT_TRUE(isLoad(Opcode::LDD));
    EXPECT_TRUE(isStore(Opcode::STW));
    EXPECT_TRUE(isMem(Opcode::STB));
    EXPECT_FALSE(isMem(Opcode::ADD));
    EXPECT_TRUE(isBranch(Opcode::BR));
    EXPECT_TRUE(isBranch(Opcode::BRO));
    EXPECT_EQ(opInfo(Opcode::LDH).accessBytes, 2u);
    EXPECT_EQ(opInfo(Opcode::STD).accessBytes, 8u);
}

struct EvalCase
{
    Opcode op;
    Word a, b, c;
    std::int64_t imm;
    Word expect;
};

class EvalOpTest : public ::testing::TestWithParam<EvalCase>
{
};

TEST_P(EvalOpTest, ProducesExpectedValue)
{
    const EvalCase &t = GetParam();
    EXPECT_EQ(evalOp(t.op, t.a, t.b, t.c, t.imm), t.expect)
        << opName(t.op);
}

constexpr Word kNeg1 = ~Word{0};
constexpr Word kMinS = Word{1} << 63;

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EvalOpTest,
    ::testing::Values(
        EvalCase{Opcode::MOV, 7, 0, 0, 0, 7},
        EvalCase{Opcode::MOVI, 0, 0, 0, -2,
                 static_cast<Word>(std::int64_t{-2})},
        EvalCase{Opcode::ADD, 3, 4, 0, 0, 7},
        EvalCase{Opcode::SUB, 3, 4, 0, 0, kNeg1},
        EvalCase{Opcode::MUL, 5, 6, 0, 0, 30},
        EvalCase{Opcode::DIVS, kNeg1, 1, 0, 0, kNeg1}, // -1 / 1
        EvalCase{Opcode::DIVS, 10, 0, 0, 0, 0},        // div by zero
        EvalCase{Opcode::DIVS, kMinS, kNeg1, 0, 0, kMinS}, // overflow
        EvalCase{Opcode::DIVU, 10, 3, 0, 0, 3},
        EvalCase{Opcode::DIVU, 10, 0, 0, 0, 0},
        EvalCase{Opcode::REMU, 10, 3, 0, 0, 1},
        EvalCase{Opcode::REMU, 10, 0, 0, 0, 0},
        EvalCase{Opcode::AND, 0b1100, 0b1010, 0, 0, 0b1000},
        EvalCase{Opcode::OR, 0b1100, 0b1010, 0, 0, 0b1110},
        EvalCase{Opcode::XOR, 0b1100, 0b1010, 0, 0, 0b0110},
        EvalCase{Opcode::SHL, 1, 65, 0, 0, 2},   // shift mod 64
        EvalCase{Opcode::SHR, kMinS, 63, 0, 0, 1},
        EvalCase{Opcode::SRA, kMinS, 63, 0, 0, kNeg1},
        EvalCase{Opcode::ADDI, 10, 0, 0, -3, 7},
        EvalCase{Opcode::MULI, 10, 0, 0, 3, 30},
        EvalCase{Opcode::ANDI, 0xff, 0, 0, 0x0f, 0x0f},
        EvalCase{Opcode::ORI, 0xf0, 0, 0, 0x0f, 0xff},
        EvalCase{Opcode::XORI, 0xff, 0, 0, 0x0f, 0xf0},
        EvalCase{Opcode::SHLI, 1, 0, 0, 4, 16},
        EvalCase{Opcode::SHRI, 16, 0, 0, 4, 1},
        EvalCase{Opcode::SRAI, kMinS, 0, 0, 63, kNeg1},
        EvalCase{Opcode::TEQ, 4, 4, 0, 0, 1},
        EvalCase{Opcode::TNE, 4, 4, 0, 0, 0},
        EvalCase{Opcode::TLT, kNeg1, 0, 0, 0, 1}, // -1 < 0 signed
        EvalCase{Opcode::TLE, 4, 4, 0, 0, 1},
        EvalCase{Opcode::TLTU, kNeg1, 0, 0, 0, 0}, // max unsigned
        EvalCase{Opcode::TLEU, 3, 4, 0, 0, 1},
        EvalCase{Opcode::TEQI, 5, 0, 0, 5, 1},
        EvalCase{Opcode::TNEI, 5, 0, 0, 5, 0},
        EvalCase{Opcode::TLTI, kNeg1, 0, 0, 0, 1},
        EvalCase{Opcode::TLTUI, 3, 0, 0, 4, 1},
        EvalCase{Opcode::SEL, 1, 10, 20, 0, 10},
        EvalCase{Opcode::SEL, 0, 10, 20, 0, 20},
        EvalCase{Opcode::BR, 2, 0, 0, 0, 2},
        EvalCase{Opcode::BRO, 0, 0, 0, 3, 3}));

TEST(EvalOp, FloatingPointSemantics)
{
    Word a = doubleToWord(1.5), b = doubleToWord(2.5);
    EXPECT_EQ(wordToDouble(evalOp(Opcode::FADD, a, b, 0, 0)), 4.0);
    EXPECT_EQ(wordToDouble(evalOp(Opcode::FSUB, a, b, 0, 0)), -1.0);
    EXPECT_EQ(wordToDouble(evalOp(Opcode::FMUL, a, b, 0, 0)), 3.75);
    EXPECT_EQ(wordToDouble(evalOp(Opcode::FDIV, a, b, 0, 0)), 0.6);
    EXPECT_EQ(evalOp(Opcode::FEQ, a, a, 0, 0), 1u);
    EXPECT_EQ(evalOp(Opcode::FLT, a, b, 0, 0), 1u);
    EXPECT_EQ(evalOp(Opcode::FLE, b, b, 0, 0), 1u);
    EXPECT_EQ(wordToDouble(evalOp(Opcode::I2F, static_cast<Word>(-3),
                                  0, 0, 0)),
              -3.0);
    EXPECT_EQ(evalOp(Opcode::F2I, doubleToWord(-3.7), 0, 0, 0),
              static_cast<Word>(std::int64_t{-3}));
}

TEST(EvalOp, F2iClampsUnrepresentable)
{
    // Speculative garbage must never invoke UB in the host.
    EXPECT_EQ(evalOp(Opcode::F2I, doubleToWord(1e300), 0, 0, 0), 0u);
    EXPECT_EQ(evalOp(Opcode::F2I,
                     doubleToWord(std::numeric_limits<double>::
                                      quiet_NaN()),
                     0, 0, 0),
              0u);
}

TEST(EvalOp, EffectiveAddress)
{
    EXPECT_EQ(memEffAddr(100, -4), 96u);
    EXPECT_EQ(memEffAddr(100, 4), 104u);
}

// ---------------------------------------------------------------------------
// Block validation.
// ---------------------------------------------------------------------------

/** Minimal well-formed block: `movi 1 -> br` (exit from a value). */
Block
validBlock()
{
    Block b("t");
    Instruction movi;
    movi.op = Opcode::MOVI;
    movi.imm = 0;
    movi.targets[0] = Target::toOperand(1, 0);
    b.insts().push_back(movi);
    Instruction br;
    br.op = Opcode::BR;
    b.insts().push_back(br);
    b.exits().push_back(kHaltBlock);
    return b;
}

TEST(BlockValidate, AcceptsMinimalBlock)
{
    std::string why;
    EXPECT_TRUE(validBlock().validate(&why)) << why;
}

TEST(BlockValidate, RejectsEmptyBlock)
{
    Block b("t");
    b.exits().push_back(kHaltBlock);
    EXPECT_FALSE(b.validate());
}

TEST(BlockValidate, RejectsMissingBranch)
{
    Block b = validBlock();
    b.insts()[1].op = Opcode::MOVI; // overwrite the branch
    b.insts()[0].targets[0] = Target{};
    EXPECT_FALSE(b.validate());
}

TEST(BlockValidate, RejectsTwoBranches)
{
    Block b = validBlock();
    Instruction bro;
    bro.op = Opcode::BRO;
    b.insts().push_back(bro);
    EXPECT_FALSE(b.validate());
}

TEST(BlockValidate, RejectsUnwiredOperand)
{
    Block b = validBlock();
    b.insts()[0].targets[0] = Target{}; // br operand now unwired
    std::string why;
    EXPECT_FALSE(b.validate(&why));
    EXPECT_NE(why.find("producers"), std::string::npos);
}

TEST(BlockValidate, RejectsDoublyWiredOperand)
{
    Block b = validBlock();
    Instruction extra;
    extra.op = Opcode::MOVI;
    extra.targets[0] = Target::toOperand(1, 0); // second producer
    b.insts().push_back(extra);
    EXPECT_FALSE(b.validate());
}

TEST(BlockValidate, RejectsNonDenseLsids)
{
    Block b = validBlock();
    Instruction ld;
    ld.op = Opcode::LDD;
    ld.lsid = 1; // should be 0
    b.insts().push_back(ld);
    b.insts()[0].targets[1] = Target::toOperand(2, 0);
    EXPECT_FALSE(b.validate());
    b.insts()[2].lsid = 0;
    std::string why;
    EXPECT_TRUE(b.validate(&why)) << why;
}

TEST(BlockValidate, RejectsStoreWithTargets)
{
    Block b = validBlock();
    Instruction st;
    st.op = Opcode::STD;
    st.lsid = 0;
    st.targets[0] = Target::toOperand(0, 0);
    b.insts().push_back(st);
    EXPECT_FALSE(b.validate());
}

TEST(BlockValidate, RejectsDuplicateRegisterWrite)
{
    Block b = validBlock();
    b.writes().push_back(RegWrite{5});
    b.writes().push_back(RegWrite{5});
    b.insts()[0].targets[1] = Target::toWrite(0);
    Instruction movi;
    movi.op = Opcode::MOVI;
    movi.targets[0] = Target::toWrite(1);
    b.insts().push_back(movi);
    std::string why;
    EXPECT_FALSE(b.validate(&why));
    EXPECT_NE(why.find("written twice"), std::string::npos);
}

TEST(BlockValidate, RejectsReadWithoutTargets)
{
    Block b = validBlock();
    b.reads().push_back(RegRead{3, {}});
    EXPECT_FALSE(b.validate());
}

TEST(BlockValidate, RejectsTooManyInstructions)
{
    Block b = validBlock();
    for (unsigned i = 0; i < kMaxBlockInsts; ++i) {
        Instruction movi;
        movi.op = Opcode::MOVI;
        b.insts().push_back(movi);
    }
    EXPECT_FALSE(b.validate());
}

TEST(BlockValidate, RejectsTargetOutOfRange)
{
    Block b = validBlock();
    b.insts()[0].targets[1] = Target::toOperand(99, 0);
    EXPECT_FALSE(b.validate());
}

TEST(BlockValidate, RejectsBranchExitIndexOutOfRange)
{
    // A BRO's exit index is static, so the validator can check it
    // against the exit table instead of leaving it to the executor.
    Block b = validBlock();
    b.insts()[1].op = Opcode::BRO;
    b.insts()[1].imm = 3;               // only exit 0 exists
    b.insts()[0].targets[0] = Target{}; // BRO consumes no operands
    std::string why;
    EXPECT_FALSE(b.validate(&why));
    EXPECT_NE(why.find("exit index"), std::string::npos);

    b.insts()[1].imm = 0;
    EXPECT_TRUE(b.validate(&why)) << why;
}

TEST(BlockValidate, CollectsEveryIssue)
{
    // validateInto keeps going after the first problem: an empty
    // exit table AND an unwired operand produce two issues, each
    // locating itself with the caller's `where` prefix.
    Block b = validBlock();
    b.exits().clear();
    b.insts()[0].targets[0] = Target{};
    std::vector<ValidationIssue> issues;
    EXPECT_EQ(b.validateInto(issues, "here"), 2u);
    ASSERT_EQ(issues.size(), 2u);
    for (const ValidationIssue &is : issues)
        EXPECT_EQ(is.where.rfind("here", 0), 0u) << is.str();
}

TEST(Program, ValidateAllNamesTheFailingBlock)
{
    Program p("t");
    p.addBlock(validBlock());
    Block bad = validBlock();
    bad.setName("oops");
    bad.exits()[0] = 42;
    p.addBlock(bad);
    std::vector<ValidationIssue> issues = p.validateAll();
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_NE(issues[0].where.find("oops"), std::string::npos);
    EXPECT_NE(issues[0].what.find("bad block"), std::string::npos);
}

TEST(Block, Disassembly)
{
    Block b = validBlock();
    std::string d = b.disassemble();
    EXPECT_NE(d.find("movi"), std::string::npos);
    EXPECT_NE(d.find("br"), std::string::npos);
    EXPECT_NE(d.find("halt"), std::string::npos);
}

TEST(Program, ValidatesBlocksAndEdges)
{
    Program p("t");
    p.addBlock(validBlock());
    std::string why;
    EXPECT_TRUE(p.validate(&why)) << why;

    Block bad = validBlock();
    bad.setName("bad");
    bad.exits()[0] = 42; // dangling successor
    p.addBlock(bad);
    EXPECT_FALSE(p.validate(&why));
    EXPECT_NE(why.find("exit"), std::string::npos);
}

TEST(Program, LooksUpBlocksByName)
{
    Program p("t");
    Block b = validBlock();
    b.setName("entry");
    BlockId id = p.addBlock(b);
    EXPECT_EQ(p.blockByName("entry"), id);
    EXPECT_EQ(p.staticInsts(), 2u);
}

} // namespace
} // namespace edge::isa
