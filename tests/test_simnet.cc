/**
 * @file
 * The deterministic fabric simulation, tested at three layers:
 *
 *  - VirtualClock units: deadline math, sleep-as-jump, monotonicity.
 *  - SimNet semantics: event ordering, no-wait fast-forward, stream
 *    delivery, sever notification, scripted chaos.
 *  - Whole worlds: clean multi-profile seed sweeps with zero
 *    invariant violations, generative-run determinism, fabsim
 *    capture round-trips, and (under EDGE_MUTATIONS) the planted
 *    hedge-revocation regression — found by the explorer in a
 *    bounded seed range and ddmin'd to a handful of events.
 */

#include <filesystem>
#include <numeric>

#include <gtest/gtest.h>

#include "serve/clock.hh"
#include "serve/simnet/explorer.hh"
#include "serve/simnet/simnet.hh"
#include "triage/minimize.hh"

using namespace edge;
using namespace edge::serve;
using namespace edge::serve::simnet;

namespace {

/** Per-suite scratch dir for crash-profile journal files. */
std::string
scratchDir()
{
    std::string dir = "test-fabsim-scratch";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

} // namespace

// --- VirtualClock ---------------------------------------------------

TEST(VirtualClock, StartsAtEpochAndJumps)
{
    VirtualClock c;
    EXPECT_EQ(c.nowMs(), 0u);
    c.advanceMs(5);
    EXPECT_EQ(c.nowMs(), 5u);
    // A virtual sleep is a pure jump: no wall time, exact amount.
    c.sleepFor(100);
    EXPECT_EQ(c.nowMs(), 105u);
}

TEST(VirtualClock, DeadlineMathClampsAtZero)
{
    VirtualClock c;
    Clock::time_point start = c.now();
    Clock::time_point deadline =
        start + std::chrono::milliseconds(50);
    EXPECT_EQ(c.msUntil(deadline), 50);
    c.advanceMs(20);
    EXPECT_EQ(c.msUntil(deadline), 30);
    c.advanceMs(100);
    EXPECT_EQ(c.msUntil(deadline), 0); // past deadlines clamp
}

TEST(VirtualClock, Monotonic)
{
    VirtualClock c;
    c.advanceMs(100);
    Clock::time_point past =
        c.now() - std::chrono::milliseconds(50);
    c.advanceTo(past); // backwards target is a no-op
    EXPECT_EQ(c.nowMs(), 100u);
    c.advanceTo(c.now() + std::chrono::milliseconds(7));
    EXPECT_EQ(c.nowMs(), 107u);
}

// --- SimNet event queue ---------------------------------------------

TEST(SimNet, FiresInTimeThenSchedulingOrder)
{
    SimNet net(7, SimProfile::None);
    std::vector<int> order;
    net.at(10, [&] { order.push_back(1); });
    net.at(10, [&] { order.push_back(2); }); // same time: FIFO
    net.at(5, [&] { order.push_back(0); });
    net.after(20, [&] { order.push_back(3); });
    net.runFor(15);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    // No-wait fast-forward: the clock lands on the window end even
    // though the last event was at t=10.
    EXPECT_EQ(net.nowMs(), 15u);
    net.runFor(100);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[3], 3);
    EXPECT_EQ(net.nowMs(), 115u);
}

TEST(SimNet, PastScheduleClampsToNow)
{
    SimNet net(7, SimProfile::None);
    net.runFor(50);
    bool fired = false;
    net.at(10, [&] { fired = true; }); // in the past: fires "now"
    net.runFor(1);
    EXPECT_TRUE(fired);
}

// --- SimStream / SimTransport ---------------------------------------

TEST(SimStream, ConnectRequiresAListener)
{
    SimNet net(1, SimProfile::None);
    EXPECT_EQ(net.connect("a0.0", false, [] {}), nullptr);
}

TEST(SimStream, DeliversBothWaysAndWakes)
{
    SimNet net(1, SimProfile::None);
    SimTransport tr(&net);
    std::string err;
    ASSERT_TRUE(tr.listen(0, &err));
    int wakes = 0;
    auto s = net.connect("a0.0", false, [&] { ++wakes; });
    ASSERT_NE(s, nullptr);
    s->send("hello");
    std::vector<std::unique_ptr<Stream>> accepted;
    tr.pump(10, {}, &accepted);
    ASSERT_EQ(accepted.size(), 1u);
    std::string line;
    ASSERT_TRUE(accepted[0]->nextLine(&line));
    EXPECT_EQ(line, "hello");
    EXPECT_FALSE(accepted[0]->nextLine(&line));

    accepted[0]->send("welcome");
    net.runFor(10);
    EXPECT_GE(wakes, 1);
    ASSERT_TRUE(s->nextLine(&line));
    EXPECT_EQ(line, "welcome");
}

TEST(SimStream, SeverKillsThePeer)
{
    SimNet net(2, SimProfile::None);
    SimTransport tr(&net);
    std::string err;
    ASSERT_TRUE(tr.listen(0, &err));
    int wakes = 0;
    auto s = net.connect("a0.0", false, [&] { ++wakes; });
    ASSERT_NE(s, nullptr);
    std::vector<std::unique_ptr<Stream>> accepted;
    tr.pump(10, {}, &accepted);
    ASSERT_EQ(accepted.size(), 1u);

    accepted[0]->sever();
    EXPECT_TRUE(accepted[0]->dead());
    net.runFor(5); // the kill notification is an event, never inline
    EXPECT_TRUE(s->dead());
    EXPECT_GE(wakes, 1);
}

TEST(SimStream, ScriptedDropRemovesExactlyThatMessage)
{
    SimNet net(3, SimProfile::None);
    net.setScript({ChaosEvent{EvKind::Drop, "a0.0>c", 1, 0, 0}});
    SimTransport tr(&net);
    std::string err;
    ASSERT_TRUE(tr.listen(0, &err));
    auto s = net.connect("a0.0", /*chaosArmed=*/true, [] {});
    ASSERT_NE(s, nullptr);
    s->send("m0"); // ord 0: delivered
    s->send("m1"); // ord 1: scripted drop
    s->send("m2"); // ord 2: delivered
    std::vector<std::unique_ptr<Stream>> accepted;
    tr.pump(20, {}, &accepted);
    ASSERT_EQ(accepted.size(), 1u);
    std::vector<std::string> got;
    std::string line;
    while (accepted[0]->nextLine(&line))
        got.push_back(line);
    ASSERT_EQ(got.size(), 2u); // base latency may reorder m0/m2
    EXPECT_TRUE((got[0] == "m0" && got[1] == "m2") ||
                (got[0] == "m2" && got[1] == "m0"));
    // The drop was recorded as a fired event.
    ASSERT_EQ(net.fired().size(), 1u);
    EXPECT_EQ(net.fired()[0].kind, EvKind::Drop);
    EXPECT_EQ(net.fired()[0].edge, "a0.0>c");
    EXPECT_EQ(net.fired()[0].ord, 1u);
}

// --- whole worlds ---------------------------------------------------

TEST(SimWorld, CleanSeedsAcrossProfiles)
{
    ExplorerOptions xo;
    xo.fabsimDir = scratchDir();
    for (SimProfile p :
         {SimProfile::None, SimProfile::Drop, SimProfile::Partition,
          SimProfile::CrashRestart, SimProfile::Liar}) {
        xo.profile = p;
        for (std::uint64_t s = 0; s < 8; ++s) {
            WorldParams wp = deriveWorld(s, xo);
            WorldResult r = runWorld(wp, nullptr);
            EXPECT_EQ(r.violation.invariant, "")
                << simProfileName(p) << " seed " << s << ": "
                << r.violation.detail;
        }
    }
}

TEST(SimWorld, GenerativeRunsAreDeterministic)
{
    ExplorerOptions xo;
    xo.profile = SimProfile::Heavy;
    xo.fabsimDir = scratchDir();
    WorldParams wp = deriveWorld(4, xo);
    WorldResult a = runWorld(wp, nullptr);
    WorldResult b = runWorld(wp, nullptr);
    // Same seed, same world: bit-identical outcome and schedule.
    EXPECT_EQ(fabsimToJson(wp, a.violation, a.schedule).dump(),
              fabsimToJson(wp, b.violation, b.schedule).dump());
}

TEST(SimWorld, FabsimJsonRoundTrips)
{
    WorldParams wp;
    wp.seed = 42;
    wp.profile = SimProfile::Partition;
    wp.agents = 3;
    wp.cells = 7;
    wp.clients = 2;
    wp.hedgeAfterMs = 400;
    wp.auditFrac = 0.25;
    wp.maxQueued = 1;
    wp.mutateNoHedgeRevoke = true;
    Violation v{"lease-leak", "campaign 0 ended with 1 live lease(s)"};
    std::vector<ChaosEvent> sched{
        {EvKind::Drop, "a0.0>c", 3, 0, 0},
        {EvKind::Delay, "a1.0<c", 5, 312, 0},
        {EvKind::SlowExec, "a2", 1, 450, 0},
        {EvKind::AgentCrash, "a1", 0, 2100, 700},
        {EvKind::CoordCrash, "coord", 0, 3300, 450},
    };
    triage::JsonValue doc = fabsimToJson(wp, v, sched);

    WorldParams wp2;
    Violation v2;
    std::vector<ChaosEvent> sched2;
    std::string err;
    ASSERT_TRUE(fabsimFromJson(doc, &wp2, &v2, &sched2, &err))
        << err;
    EXPECT_EQ(wp2.seed, wp.seed);
    EXPECT_EQ(wp2.profile, wp.profile);
    EXPECT_EQ(wp2.agents, wp.agents);
    EXPECT_EQ(wp2.cells, wp.cells);
    EXPECT_EQ(wp2.clients, wp.clients);
    EXPECT_EQ(wp2.hedgeAfterMs, wp.hedgeAfterMs);
    EXPECT_DOUBLE_EQ(wp2.auditFrac, wp.auditFrac);
    EXPECT_EQ(wp2.maxQueued, wp.maxQueued);
    EXPECT_TRUE(wp2.mutateNoHedgeRevoke);
    EXPECT_EQ(v2.invariant, v.invariant);
    EXPECT_EQ(v2.detail, v.detail);
    ASSERT_EQ(sched2.size(), sched.size());
    for (std::size_t i = 0; i < sched.size(); ++i) {
        EXPECT_EQ(sched2[i].kind, sched[i].kind);
        EXPECT_EQ(sched2[i].edge, sched[i].edge);
        EXPECT_EQ(sched2[i].ord, sched[i].ord);
        EXPECT_EQ(sched2[i].param, sched[i].param);
        EXPECT_EQ(sched2[i].param2, sched[i].param2);
    }
    // Round-trip is a fixed point.
    EXPECT_EQ(fabsimToJson(wp2, v2, sched2).dump(), doc.dump());
}

TEST(SimWorld, ProfileAndKindNamesRoundTrip)
{
    for (SimProfile p :
         {SimProfile::None, SimProfile::Drop, SimProfile::Delay,
          SimProfile::Partition, SimProfile::CrashRestart,
          SimProfile::Liar, SimProfile::Heavy}) {
        SimProfile q;
        ASSERT_TRUE(simProfileByName(simProfileName(p), &q));
        EXPECT_EQ(q, p);
    }
    for (EvKind k : {EvKind::Drop, EvKind::Dup, EvKind::Delay,
                     EvKind::SlowExec, EvKind::Lie,
                     EvKind::AgentCrash, EvKind::CoordCrash}) {
        EvKind j;
        ASSERT_TRUE(evKindByName(evKindName(k), &j));
        EXPECT_EQ(j, k);
    }
}

#ifdef EDGE_MUTATIONS
/** The acceptance loop of the whole subsystem: with the planted
 *  mutation armed (finalize skips revoking hedge siblings), the
 *  explorer must FIND a lease leak within a bounded seed range,
 *  the capture must REPLAY, and ddmin must shrink the schedule to
 *  at most 5 events that still reproduce it. */
TEST(SimRegression, PlantedHedgeLeakFoundReplayedMinimized)
{
    ExplorerOptions xo;
    xo.profile = SimProfile::Delay; // slow wires arm the hedger
    xo.mutateNoHedgeRevoke = true;
    xo.fabsimDir = scratchDir();

    WorldParams found;
    WorldResult capture;
    bool hit = false;
    for (std::uint64_t s = 0; s <= 9 && !hit; ++s) {
        WorldParams wp = deriveWorld(s, xo);
        WorldResult r = runWorld(wp, nullptr);
        if (r.violation.invariant == "lease-leak") {
            found = wp;
            capture = r;
            hit = true;
        }
    }
    ASSERT_TRUE(hit)
        << "planted regression not found in seeds 0..9";
    ASSERT_FALSE(capture.schedule.empty());

    // Scripted replay of the recorded schedule reproduces the leak.
    WorldResult replay = runWorld(found, &capture.schedule);
    ASSERT_EQ(replay.violation.invariant, "lease-leak");

    // ddmin the event ordinals down to a minimal reproducer.
    std::vector<std::uint64_t> initial(capture.schedule.size());
    std::iota(initial.begin(), initial.end(), 0);
    triage::BatchTest test =
        [&](const std::vector<std::vector<std::uint64_t>> &cands) {
            std::vector<char> verdicts;
            for (const auto &cand : cands) {
                std::vector<ChaosEvent> sub;
                for (std::uint64_t ord : cand)
                    sub.push_back(capture.schedule[ord]);
                WorldResult rr = runWorld(found, &sub);
                verdicts.push_back(
                    rr.violation.invariant == "lease-leak" ? 1 : 0);
            }
            return verdicts;
        };
    triage::MinimizeOptions mo;
    mo.threads = 1;
    triage::MinimizeResult min =
        triage::minimizeOrdinals(initial, test, mo);
    EXPECT_TRUE(min.converged);
    EXPECT_LE(min.ordinals.size(), 5u)
        << "minimal schedule larger than the acceptance bound";

    std::vector<ChaosEvent> minimal;
    for (std::uint64_t ord : min.ordinals)
        minimal.push_back(capture.schedule[ord]);
    WorldResult conf = runWorld(found, &minimal);
    EXPECT_EQ(conf.violation.invariant, "lease-leak");

    // With the mutation disarmed the same minimal schedule is clean:
    // the violation is the bug's, not the harness's.
    WorldParams fixed = found;
    fixed.mutateNoHedgeRevoke = false;
    WorldResult clean = runWorld(fixed, &minimal);
    EXPECT_EQ(clean.violation.invariant, "");
}
#endif // EDGE_MUTATIONS
