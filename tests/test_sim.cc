/**
 * @file
 * Tests for the simulator facade and the workload registry: config
 * presets, name round-trips, reference-execution accounting, result
 * metrics, and kernel determinism/scaling properties.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace edge {
namespace {

TEST(Configs, EveryNameResolves)
{
    for (const auto &name : sim::Configs::allNames()) {
        core::MachineConfig cfg = sim::Configs::byName(name);
        // Sanity: a resolvable config must be runnable.
        EXPECT_GE(cfg.core.numFrames, 1u) << name;
    }
}

TEST(Configs, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)sim::Configs::byName("nonsense"),
                 "unknown machine configuration");
}

TEST(Configs, PresetsMatchTheirMechanism)
{
    EXPECT_EQ(sim::Configs::conservative().policy,
              pred::DepPolicy::Conservative);
    EXPECT_EQ(sim::Configs::blindFlush().lsq.recovery,
              lsq::Recovery::Flush);
    EXPECT_EQ(sim::Configs::dsre().lsq.recovery, lsq::Recovery::Dsre);
    EXPECT_EQ(sim::Configs::dsre().policy, pred::DepPolicy::Blind);
    EXPECT_EQ(sim::Configs::storeSetsFlush().policy,
              pred::DepPolicy::StoreSets);
    EXPECT_EQ(sim::Configs::oracle().policy, pred::DepPolicy::Oracle);
    EXPECT_TRUE(sim::Configs::dsreVp().lsq.valuePredictMisses);
    EXPECT_FALSE(sim::Configs::dsre().lsq.valuePredictMisses);
}

TEST(Simulator, ReferenceAccountingMatchesTimingRun)
{
    wl::KernelParams kp;
    kp.iterations = 120;
    sim::Simulator s(wl::build("gzipish", kp), sim::Configs::dsre());
    EXPECT_EQ(s.refDynBlocks(), 121u); // 120 loop blocks + done
    sim::RunResult r = s.run();
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.committedBlocks, s.refDynBlocks());
    EXPECT_EQ(r.committedInsts, s.refDynInsts());
    EXPECT_EQ(s.oracleDb().numBlocks(), s.refDynBlocks());
}

TEST(Simulator, RunResultMetricsAreConsistent)
{
    wl::KernelParams kp;
    kp.iterations = 100;
    sim::Simulator s(wl::build("bzip2ish", kp),
                     sim::Configs::dsre());
    sim::RunResult r = s.run();
    ASSERT_TRUE(r.halted && r.archMatch);
    EXPECT_NEAR(r.ipc(),
                static_cast<double>(r.committedInsts) /
                    static_cast<double>(r.cycles),
                1e-12);
    EXPECT_GE(r.aluIssues, r.committedInsts); // wrong path + re-exec
    EXPECT_LE(r.reexecFraction(), 1.0);
    EXPECT_GE(r.loads, 1u);
    EXPECT_GE(r.stores, 1u);
}

TEST(Simulator, CycleBudgetIsRespected)
{
    wl::KernelParams kp;
    kp.iterations = 100000; // far more than the budget allows
    sim::Simulator s(wl::build("mcfish", kp), sim::Configs::dsre());
    sim::RunResult r = s.run(/*max_cycles=*/5000);
    EXPECT_FALSE(r.halted);
    EXPECT_FALSE(r.archMatch); // incomplete run can never match
    EXPECT_LE(r.cycles, 5000u);
}

TEST(Workloads, RegistryAndBuildersAgree)
{
    EXPECT_EQ(wl::kernels().size(), 14u);
    for (const auto &info : wl::kernels()) {
        wl::KernelParams kp;
        kp.iterations = 4;
        isa::Program p = wl::build(info.name, kp);
        std::string why;
        EXPECT_TRUE(p.validate(&why)) << info.name << ": " << why;
        EXPECT_FALSE(info.specAnalog.empty());
        EXPECT_FALSE(info.description.empty());
    }
    EXPECT_DEATH((void)wl::build("bogus", {}), "unknown kernel");
}

TEST(Workloads, SeedsChangeInputsDeterministically)
{
    wl::KernelParams a, b;
    a.iterations = b.iterations = 50;
    a.seed = 1;
    b.seed = 2;
    for (const char *k : {"gzipish", "twolfish", "craftyish"}) {
        compiler::RefExecutor r1(wl::build(k, a));
        compiler::RefExecutor r1b(wl::build(k, a));
        compiler::RefExecutor r2(wl::build(k, b));
        r1.run(1000);
        r1b.run(1000);
        r2.run(1000);
        EXPECT_EQ(r1.regs()[5], r1b.regs()[5]) << k; // deterministic
        EXPECT_NE(r1.regs()[5], r2.regs()[5]) << k;  // seed-sensitive
    }
}

TEST(Workloads, IterationsScaleDynamicBlocks)
{
    for (std::uint64_t n : {10ull, 100ull}) {
        wl::KernelParams kp;
        kp.iterations = n;
        compiler::RefExecutor ref(wl::build("vprish", kp));
        auto r = ref.run(10000);
        EXPECT_TRUE(r.halted);
        EXPECT_EQ(r.dynBlocks, n + 1);
    }
}

TEST(Workloads, EveryKernelTerminatesFunctionally)
{
    for (const auto &name : wl::kernelNames()) {
        wl::KernelParams kp;
        kp.iterations = 25;
        compiler::RefExecutor ref(wl::build(name, kp));
        auto r = ref.run(100000);
        EXPECT_TRUE(r.halted) << name;
    }
}

} // namespace
} // namespace edge
