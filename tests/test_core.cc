/**
 * @file
 * Unit tests for the core module: reservation-station nodes (wave
 * staleness, re-fire on value change, value-identity squash, commit
 * ports), the register-forwarding unit (subscriptions, waves,
 * commit, flush), and Processor-level integration for control
 * misspeculation and halting.
 */

#include <gtest/gtest.h>

#include "panic_check.hh"

#include "compiler/builder.hh"
#include "core/exec_node.hh"
#include "core/reg_unit.hh"
#include "sim/simulator.hh"

namespace edge::core {
namespace {

using isa::Opcode;
using isa::Target;

class ExecNodeTest : public ::testing::Test
{
  protected:
    ExecNodeTest()
        : stats("t"),
          ns{stats.counter("core.alu_issues", ""),
             stats.counter("core.alu_reexecs", ""),
             stats.counter("core.upgrades", ""),
             stats.counter("core.squashes", ""),
             stats.histogram("core.wave_depth", "")},
          node(params, ns,
               [this](const NodeEvent &ev) { events.push_back(ev); })
    {
    }

    /** Map `add imm -> w0` style instruction at (frame 0, local 0). */
    void
    mapAdd()
    {
        isa::Instruction in;
        in.op = Opcode::ADD;
        in.targets[0] = Target::toWrite(0);
        node.mapInst(0, 0, /*seq=*/1, /*slot=*/0, in);
    }

    CoreParams params;
    StatSet stats;
    NodeStats ns;
    std::vector<NodeEvent> events;
    ExecNode node;
};

TEST_F(ExecNodeTest, ExecutesWhenAllOperandsArrive)
{
    mapAdd();
    node.deliver(0, 0, 0, 3, ValState::Final, 1, 0);
    node.tick(0);
    EXPECT_TRUE(events.empty()); // operand 1 missing
    node.deliver(0, 0, 1, 4, ValState::Final, 1, 0);
    node.tick(1);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].value, 7u);
    EXPECT_EQ(events[0].state, ValState::Final);
    EXPECT_EQ(events[0].when, 1 + params.latIntAlu);
}

TEST_F(ExecNodeTest, SpecInputsGiveSpecOutput)
{
    mapAdd();
    node.deliver(0, 0, 0, 3, ValState::Spec, 1, 0);
    node.deliver(0, 0, 1, 4, ValState::Final, 1, 0);
    node.tick(0);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].state, ValState::Spec);
}

TEST_F(ExecNodeTest, ValueChangeRefiresWithHigherWave)
{
    mapAdd();
    node.deliver(0, 0, 0, 3, ValState::Spec, 1, 0);
    node.deliver(0, 0, 1, 4, ValState::Spec, 1, 0);
    node.tick(0);
    node.deliver(0, 0, 0, 10, ValState::Spec, 2, 0); // new wave
    node.tick(1);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].value, 14u);
    EXPECT_GT(events[1].wave, events[0].wave);
    EXPECT_EQ(stats.counterValue("core.alu_reexecs"), 1u);
}

TEST_F(ExecNodeTest, StaleWavesAreIgnored)
{
    mapAdd();
    node.deliver(0, 0, 0, 3, ValState::Spec, 5, 0);
    node.deliver(0, 0, 1, 4, ValState::Spec, 1, 0);
    node.tick(0);
    EXPECT_FALSE(node.deliver(0, 0, 0, 99, ValState::Spec, 4, 0));
    node.tick(1);
    EXPECT_EQ(events.size(), 1u); // no re-fire from the stale value
}

TEST_F(ExecNodeTest, IdenticalReExecutionIsSquashed)
{
    mapAdd();
    node.deliver(0, 0, 0, 3, ValState::Spec, 1, 0);
    node.deliver(0, 0, 1, 4, ValState::Spec, 1, 0);
    node.tick(0);
    // Both operands change so that the sum is unchanged.
    node.deliver(0, 0, 0, 4, ValState::Spec, 2, 0);
    node.deliver(0, 0, 1, 3, ValState::Spec, 2, 0);
    node.tick(1);
    EXPECT_EQ(events.size(), 1u); // re-executed but squashed
    EXPECT_EQ(stats.counterValue("core.squashes"), 1u);
    EXPECT_EQ(stats.counterValue("core.alu_reexecs"), 1u);
}

TEST_F(ExecNodeTest, CommitWaveUpgradeUsesCommitPort)
{
    mapAdd();
    node.deliver(0, 0, 0, 3, ValState::Spec, 1, 0);
    node.deliver(0, 0, 1, 4, ValState::Final, 1, 0);
    node.tick(0);
    // The Spec operand upgrades with the same value.
    node.deliver(0, 0, 0, 3, ValState::Final, 2, 0);
    node.tick(1);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].state, ValState::Final);
    EXPECT_EQ(events[1].value, 7u);
    EXPECT_TRUE(events[1].statusOnly);
    EXPECT_EQ(stats.counterValue("core.upgrades"), 1u);
    EXPECT_EQ(stats.counterValue("core.alu_issues"), 1u); // no ALU
}

TEST_F(ExecNodeTest, FinalOperandValueChangePanics)
{
    mapAdd();
    node.deliver(0, 0, 0, 3, ValState::Final, 1, 0);
    EXPECT_PANIC(node.deliver(0, 0, 0, 8, ValState::Final, 2, 0),
                 "protocol violation");
}

TEST_F(ExecNodeTest, OldestBlockIssuesFirst)
{
    isa::Instruction movi;
    movi.op = Opcode::MOVI;
    movi.imm = 1;
    node.mapInst(1, 0, /*seq=*/9, /*slot=*/0, movi);
    node.mapInst(2, 0, /*seq=*/4, /*slot=*/0, movi);
    node.tick(0);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].seq, 4u); // older block wins the ALU
}

TEST_F(ExecNodeTest, StoreEmitsResolveWithSplitStates)
{
    isa::Instruction st;
    st.op = Opcode::STD;
    st.lsid = 3;
    node.mapInst(0, 0, 1, 0, st);
    node.deliver(0, 0, 0, 0x100, ValState::Final, 1, 0); // addr
    node.deliver(0, 0, 1, 42, ValState::Spec, 1, 0);     // data
    node.tick(0);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, NodeEvent::Kind::StoreResolve);
    EXPECT_EQ(events[0].addr, 0x100u);
    EXPECT_EQ(events[0].value, 42u);
    EXPECT_EQ(events[0].addrState, ValState::Final);
    EXPECT_EQ(events[0].state, ValState::Spec);
    EXPECT_EQ(events[0].lsid, 3u);
}

TEST_F(ExecNodeTest, LoadEmitsRequestWithTargets)
{
    isa::Instruction ld;
    ld.op = Opcode::LDD;
    ld.imm = 8;
    ld.lsid = 0;
    ld.targets[0] = Target::toOperand(5, 1);
    node.mapInst(0, 0, 1, 0, ld);
    node.deliver(0, 0, 0, 0x100, ValState::Final, 1, 0);
    node.tick(0);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, NodeEvent::Kind::LoadRequest);
    EXPECT_EQ(events[0].addr, 0x108u);
    EXPECT_EQ(events[0].targets[0], Target::toOperand(5, 1));
}

TEST_F(ExecNodeTest, ClearFrameFreesSlots)
{
    mapAdd();
    EXPECT_EQ(node.occupancy(), 1u);
    node.clearFrame(0);
    EXPECT_EQ(node.occupancy(), 0u);
}

// ---------------------------------------------------------------------------
// Register unit.
// ---------------------------------------------------------------------------

class RegUnitTest : public ::testing::Test
{
  protected:
    RegUnitTest()
        : stats("t"),
          init(isa::kNumArchRegs, 0),
          unit(nullptr)
    {
        init[3] = 333;
        unit = std::make_unique<RegUnit>(
            params, init, stats,
            [this](const RegForward &f) { forwards.push_back(f); });

        // writer: writes r3; reader: reads r3.
        compiler::ProgramBuilder pb("t");
        auto &w = pb.newBlock("writer");
        w.writeReg(3, w.addi(w.readReg(3), 1));
        w.branchHalt();
        auto &r = pb.newBlock("reader");
        r.writeReg(4, r.readReg(3));
        r.branchHalt();
        prog = std::make_unique<isa::Program>(pb.build());
    }

    const isa::Block &writer() { return prog->block(0); }
    const isa::Block &reader() { return prog->block(1); }

    CoreParams params;
    StatSet stats;
    std::vector<Word> init;
    std::unique_ptr<RegUnit> unit;
    std::unique_ptr<isa::Program> prog;
    std::vector<RegForward> forwards;
};

TEST_F(RegUnitTest, ArchitecturalReadIsImmediateAndFinal)
{
    unit->mapBlock(0, 1, reader());
    ASSERT_EQ(forwards.size(), 1u);
    EXPECT_EQ(forwards[0].value, 333u);
    EXPECT_EQ(forwards[0].state, ValState::Final);
}

TEST_F(RegUnitTest, ReaderSubscribesToInFlightWriter)
{
    unit->mapBlock(0, 1, writer());
    forwards.clear();
    unit->mapBlock(0, 2, reader());
    // The reader subscribed to the in-flight writer; nothing can be
    // forwarded until the writer's value actually arrives.
    EXPECT_TRUE(forwards.empty());
    unit->writeArrived(5, 1, 0, 334, ValState::Final, 1, 0);
    ASSERT_EQ(forwards.size(), 1u);
    EXPECT_EQ(forwards[0].readerSeq, 2u);
    EXPECT_EQ(forwards[0].value, 334u);
    EXPECT_EQ(forwards[0].state, ValState::Final);
}

TEST_F(RegUnitTest, LateSubscriberGetsCurrentValue)
{
    unit->mapBlock(0, 1, writer());
    unit->writeArrived(5, 1, 0, 334, ValState::Spec, 1, 0);
    forwards.clear();
    unit->mapBlock(6, 2, reader());
    ASSERT_EQ(forwards.size(), 1u);
    EXPECT_EQ(forwards[0].value, 334u);
    EXPECT_EQ(forwards[0].state, ValState::Spec);
}

TEST_F(RegUnitTest, WaveValueChangeReforwards)
{
    unit->mapBlock(0, 1, writer());
    unit->mapBlock(0, 2, reader());
    unit->writeArrived(5, 1, 0, 334, ValState::Spec, 1, 0);
    std::size_t n = forwards.size();
    unit->writeArrived(9, 1, 0, 500, ValState::Spec, 2, 1);
    ASSERT_GT(forwards.size(), n);
    EXPECT_EQ(forwards.back().value, 500u);
    EXPECT_EQ(stats.counterValue("regs.rewrites"), 1u);
}

TEST_F(RegUnitTest, StaleWriteWavesAreDropped)
{
    unit->mapBlock(0, 1, writer());
    unit->writeArrived(5, 1, 0, 334, ValState::Final, 5, 0);
    std::size_t n = forwards.size();
    unit->writeArrived(6, 1, 0, 111, ValState::Spec, 3, 0); // stale
    EXPECT_EQ(forwards.size(), n);
    EXPECT_TRUE(unit->blockWritesFinal(1, true));
}

TEST_F(RegUnitTest, CommitAppliesWritesArchitecturally)
{
    unit->mapBlock(0, 1, writer());
    unit->writeArrived(5, 1, 0, 334, ValState::Final, 1, 0);
    unit->commitBlock(1);
    EXPECT_EQ(unit->archRegs()[3], 334u);
    forwards.clear();
    unit->mapBlock(9, 2, reader());
    EXPECT_EQ(forwards[0].value, 334u); // now from the arch RF
}

TEST_F(RegUnitTest, FlushRemovesSubscriptions)
{
    unit->mapBlock(0, 1, writer());
    unit->mapBlock(0, 2, reader());
    unit->flushFrom(2);
    forwards.clear();
    unit->writeArrived(5, 1, 0, 334, ValState::Final, 1, 0);
    EXPECT_TRUE(forwards.empty()); // no subscriber left
    EXPECT_EQ(unit->numBlocks(), 1u);
}

TEST_F(RegUnitTest, OutOfOrderCommitPanics)
{
    unit->mapBlock(0, 1, writer());
    unit->mapBlock(0, 2, writer());
    unit->writeArrived(5, 2, 0, 1, ValState::Final, 1, 0);
    EXPECT_PANIC(unit->commitBlock(2), "out of order");
}

// ---------------------------------------------------------------------------
// Processor-level integration.
// ---------------------------------------------------------------------------

/** Loop whose exit really is data-dependent (mispredictable). */
isa::Program
zigzagProgram(std::uint64_t n)
{
    compiler::ProgramBuilder pb("zigzag");
    pb.setInitReg(1, 0);
    pb.setInitReg(2, n);
    auto &loop = pb.newBlock("loop");
    compiler::Val i = loop.readReg(1);
    // Alternate between two successor blocks based on parity.
    loop.branchCond(loop.andi(i, 1), "odd", "even");
    auto emit = [&](const std::string &name, std::int64_t k) {
        auto &b = pb.newBlock(name);
        compiler::Val j = b.readReg(1);
        compiler::Val j2 = b.addi(j, 1);
        b.writeReg(1, j2);
        b.writeReg(5, b.addi(b.readReg(5), k));
        b.branchCond(b.tlt(j2, b.readReg(2)), "loop", "done");
    };
    emit("odd", 3);
    emit("even", 7);
    auto &done = pb.newBlock("done");
    done.store(done.imm(0x1000), done.readReg(5), 8);
    done.branchHalt();
    pb.setEntry("loop");
    return pb.build();
}

TEST(Processor, HandlesAlternatingControlFlow)
{
    for (const auto &cfg : {sim::Configs::dsre(),
                            sim::Configs::blindFlush()}) {
        sim::Simulator s(zigzagProgram(40), cfg);
        sim::RunResult r = s.run(2'000'000);
        EXPECT_TRUE(r.halted);
        EXPECT_TRUE(r.archMatch);
    }
}

TEST(Processor, TinyWindowStillCorrect)
{
    core::MachineConfig cfg = sim::Configs::dsre();
    cfg.core.numFrames = 1; // no cross-block speculation at all
    sim::Simulator s(zigzagProgram(20), cfg);
    sim::RunResult r = s.run(2'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.archMatch);
}

TEST(Processor, DeepWindowStillCorrect)
{
    core::MachineConfig cfg = sim::Configs::dsre();
    cfg.core.numFrames = 16;
    sim::Simulator s(zigzagProgram(200), cfg);
    sim::RunResult r = s.run(2'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.archMatch);
}

TEST(Processor, SingleBlockProgramHalts)
{
    compiler::ProgramBuilder pb("one");
    auto &b = pb.newBlock("only");
    b.store(b.imm(0x10), b.imm(9), 8);
    b.branchHalt();
    sim::Simulator s(pb.build(), sim::Configs::dsre());
    sim::RunResult r = s.run(100'000);
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.archMatch);
    EXPECT_EQ(r.committedBlocks, 1u);
}

} // namespace
} // namespace edge::core
