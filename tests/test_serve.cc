/**
 * @file
 * Tests for the campaign fabric (src/serve/): coordinator leases,
 * heartbeat-timeout reassignment, duplicate-result dedup, the
 * zero-agent local fallback, deterministic fabric fault injection,
 * and the self-defence layer — hedged straggler re-execution under
 * the `slow` profile, result-integrity audits and liar quarantine
 * under `liar`, admission-control shedding, fair submission
 * ordering, and client-side submit deadlines. Every scenario asserts
 * the robustness contract: the merged report is byte-identical to a
 * clean single-host run regardless of agent count, kill schedule,
 * reassignment history, hedging, or audit activity.
 *
 * This binary has a custom main(): invoked as `test_serve
 * --worker-cell` it becomes a protocol worker (the default
 * /proc/self/exe worker image), and as `test_serve --serve-agent
 * <host:port>` it becomes a fabric agent — so the tests fork/exec
 * real agent processes whose cells run through the real isolation
 * path.
 */

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "log/log_chaos.hh"
#include "serve/agent.hh"
#include "serve/daemon.hh"
#include "serve/fabric.hh"
#include "serve/net.hh"
#include "serve/proto.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "super/campaign.hh"
#include "super/cell.hh"
#include "super/supervisor.hh"
#include "super/worker.hh"
#include "triage/repro.hh"
#include "triage/result_json.hh"

namespace edge {
namespace {

/** A small, fast kernel cell: parserish under one named mechanism. */
super::CellSpec
kernelCell(std::uint64_t seed, const std::string &config_name = "dsre",
           std::uint64_t iterations = 60)
{
    super::CellSpec cell;
    cell.program.kernel = "parserish";
    cell.program.params.iterations = iterations;
    cell.config = sim::Configs::byName(config_name);
    cell.config.rngSeed = seed;
    cell.maxCycles = 200'000'000;
    return cell;
}

std::vector<super::CellSpec>
grid(std::size_t n)
{
    std::vector<super::CellSpec> cells;
    for (std::size_t i = 0; i < n; ++i)
        cells.push_back(kernelCell(i + 1));
    return cells;
}

/** What every executor should compute for `cell`, run in-process. */
sim::RunResult
runInProcess(const super::CellSpec &cell)
{
    isa::Program prog = triage::buildProgram(cell.program);
    sim::Simulator sim(std::move(prog), cell.config);
    return sim.run(cell.config, cell.maxCycles);
}

std::string
dump(const sim::RunResult &r)
{
    return triage::resultToJson(r).dumpCompact();
}

/** The clean single-host truth for a grid. */
std::vector<std::string>
truth(const std::vector<super::CellSpec> &cells)
{
    std::vector<std::string> want;
    for (const super::CellSpec &c : cells)
        want.push_back(dump(runInProcess(c)));
    return want;
}

void
expectByteIdentical(const std::vector<super::CellOutcome> &out,
                    const std::vector<std::string> &want)
{
    ASSERT_EQ(out.size(), want.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_TRUE(out[i].ran) << "cell " << i;
        EXPECT_EQ(dump(out[i].result), want[i]) << "cell " << i;
    }
}

/** Fork/exec this binary as a fabric agent against 127.0.0.1:port. */
pid_t
spawnAgent(std::uint16_t port, unsigned slots,
           std::uint64_t die_after = 0)
{
    std::string target = "127.0.0.1:" + std::to_string(port);
    std::string slots_s = std::to_string(slots);
    std::string die_s = std::to_string(die_after);
    pid_t pid = ::fork();
    if (pid == 0) {
        std::vector<const char *> argv = {
            "/proc/self/exe", "--serve-agent", target.c_str(),
            "--slots",        slots_s.c_str(),
        };
        if (die_after) {
            argv.push_back("--die-after");
            argv.push_back(die_s.c_str());
        }
        argv.push_back(nullptr);
        ::execv("/proc/self/exe",
                const_cast<char *const *>(argv.data()));
        _exit(127);
    }
    return pid;
}

void
reapAgent(pid_t pid, int sig = SIGKILL)
{
    if (pid <= 0)
        return;
    ::kill(pid, sig);
    int status = 0;
    ::waitpid(pid, &status, 0);
}

/** Pump the fabric until `n` agents are live (fatal on deadline). */
void
awaitAgents(serve::Fabric &fabric, std::size_t n,
            int deadline_ms = 15000)
{
    auto limit = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(deadline_ms);
    while (fabric.liveAgents() < n) {
        ASSERT_LT(std::chrono::steady_clock::now(), limit)
            << "agents never registered";
        fabric.pump(50);
    }
}

serve::FabricOptions
fastOptions()
{
    serve::FabricOptions fo;
    fo.listenPort = 0; // ephemeral
    fo.localJobs = 2;
    fo.retry.maxAttempts = 1;
    return fo;
}

// --- graceful degradation -------------------------------------------

TEST(ServeFallback, ZeroAgentsRunsLocallyByteIdentical)
{
    std::vector<super::CellSpec> cells = grid(4);
    std::vector<std::string> want = truth(cells);

    serve::Fabric fabric(fastOptions());
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;
    EXPECT_EQ(fabric.liveAgents(), 0u);

    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    expectByteIdentical(out, want);
    EXPECT_EQ(fabric.localCellsRun(), cells.size());
    EXPECT_EQ(fabric.completed(), cells.size());
    EXPECT_EQ(fabric.failures(), 0u);
}

TEST(ServeFallback, FabricSweepReportMatchesInProcessSweep)
{
    sim::ChaosSweepParams params;
    params.seeds = {1, 2};
    params.configs = {"dsre"};
    params.maxCycles = 200'000'000;
    params.retry.maxAttempts = 1;

    triage::ProgramRef ref;
    ref.kernel = "parserish";
    ref.params.iterations = 60;
    isa::Program prog = triage::buildProgram(ref);
    sim::ChaosSweepReport inproc = sim::chaosSweep(prog, params);

    serve::Fabric fabric(fastOptions());
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;
    bool interrupted = true;
    sim::ChaosSweepReport merged =
        super::chaosSweepIsolated(params, ref, fabric, &interrupted);

    EXPECT_FALSE(interrupted);
    ASSERT_EQ(merged.runs.size(), inproc.runs.size());
    EXPECT_EQ(merged.summary(), inproc.summary());
    for (std::size_t i = 0; i < inproc.runs.size(); ++i)
        EXPECT_EQ(dump(merged.runs[i].result),
                  dump(inproc.runs[i].result))
            << "cell " << i;
}

// --- remote execution through real agent processes ------------------

TEST(ServeAgents, RemoteResultsByteIdentical)
{
    std::vector<super::CellSpec> cells = grid(6);
    std::vector<std::string> want = truth(cells);

    serve::FabricOptions fo = fastOptions();
    // Pure-fabric run: prove the cells went over the wire, not
    // through the degradation path.
    fo.localFallback = false;
    serve::Fabric fabric(fo);
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;

    pid_t a = spawnAgent(fabric.port(), 2);
    pid_t b = spawnAgent(fabric.port(), 2);
    awaitAgents(fabric, 2);

    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    expectByteIdentical(out, want);
    EXPECT_EQ(fabric.localCellsRun(), 0u);
    EXPECT_EQ(fabric.completed(), cells.size());
    EXPECT_EQ(fabric.failures(), 0u);

    reapAgent(a);
    reapAgent(b);
}

// --- agent killed mid-cell ------------------------------------------

TEST(ServeRobust, AgentSigkilledMidCellIsReassigned)
{
    std::vector<super::CellSpec> cells = grid(6);
    std::vector<std::string> want = truth(cells);

    serve::Fabric fabric(fastOptions());
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;

    // The agent SIGKILLs itself right after its first result, while
    // a second lease is still in flight; the coordinator must revoke
    // and reassign it (here: to the local fallback).
    pid_t a = spawnAgent(fabric.port(), 2, /*die_after=*/1);
    awaitAgents(fabric, 1);

    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    expectByteIdentical(out, want);
    EXPECT_GE(fabric.agentDeaths(), 1u);
    EXPECT_GE(fabric.reassignments(), 1u);
    EXPECT_EQ(fabric.failures(), 0u);

    reapAgent(a);
}

// --- heartbeat timeout ----------------------------------------------

TEST(ServeRobust, HeartbeatTimeoutReassignsLeases)
{
    std::vector<super::CellSpec> cells = grid(4);
    std::vector<std::string> want = truth(cells);

    serve::FabricOptions fo = fastOptions();
    fo.heartbeatMs = 100;
    fo.heartbeatTimeoutMs = 500;
    serve::Fabric fabric(fo);
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;

    pid_t a = spawnAgent(fabric.port(), 2);
    awaitAgents(fabric, 1);
    // SIGSTOP: the connection stays open but the agent goes silent —
    // only the heartbeat sweep can declare it dead.
    ASSERT_EQ(::kill(a, SIGSTOP), 0);

    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    expectByteIdentical(out, want);
    EXPECT_GE(fabric.agentDeaths(), 1u);
    EXPECT_EQ(fabric.failures(), 0u);

    ::kill(a, SIGCONT);
    reapAgent(a);
}

// --- deterministic fabric fault injection ---------------------------

TEST(ServeChaos, DuplicatedResultsAreDeduped)
{
    std::vector<super::CellSpec> cells = grid(6);
    std::vector<std::string> want = truth(cells);

    serve::FabricOptions fo = fastOptions();
    fo.localFallback = false;
    fo.chaosProfile = serve::FabricProfile::Duplicate;
    fo.chaosSeed = 7;
    serve::Fabric fabric(fo);
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;

    pid_t a = spawnAgent(fabric.port(), 2);
    pid_t b = spawnAgent(fabric.port(), 2);
    awaitAgents(fabric, 2);

    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    expectByteIdentical(out, want);
    EXPECT_GT(fabric.duplicatesDeduped(), 0u);
    EXPECT_EQ(fabric.failures(), 0u);

    reapAgent(a);
    reapAgent(b);
}

TEST(ServeChaos, KillProfileSeversAgentsMidCampaign)
{
    std::vector<super::CellSpec> cells = grid(6);
    std::vector<std::string> want = truth(cells);

    serve::FabricOptions fo = fastOptions();
    fo.chaosProfile = serve::FabricProfile::Kill;
    fo.chaosSeed = 3;
    serve::Fabric fabric(fo);
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;

    pid_t a = spawnAgent(fabric.port(), 2);
    pid_t b = spawnAgent(fabric.port(), 2);
    awaitAgents(fabric, 2);

    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    expectByteIdentical(out, want);
    // The injector severs each agent's connection on its second
    // assignment; the campaign survives via reassignment + fallback.
    EXPECT_GE(fabric.agentDeaths(), 1u);
    EXPECT_GT(fabric.chaosTally().kills, 0u);
    EXPECT_EQ(fabric.failures(), 0u);

    reapAgent(a);
    reapAgent(b);
}

TEST(ServeChaos, DropProfileStillConvergesByteIdentical)
{
    std::vector<super::CellSpec> cells = grid(4);
    std::vector<std::string> want = truth(cells);

    serve::FabricOptions fo = fastOptions();
    // Dropped inbound messages look like lease timeouts; keep the
    // lease clock tight so the test re-leases quickly.
    fo.leaseMs = 2000;
    fo.chaosProfile = serve::FabricProfile::Drop;
    fo.chaosSeed = 11;
    serve::Fabric fabric(fo);
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;

    pid_t a = spawnAgent(fabric.port(), 2);
    awaitAgents(fabric, 1);

    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    expectByteIdentical(out, want);
    EXPECT_EQ(fabric.failures(), 0u);

    reapAgent(a);
}

// --- durable-ack leases ---------------------------------------------

class TempDir
{
  public:
    explicit TempDir(const std::string &name)
        : _path(std::filesystem::temp_directory_path() /
                ("edge_serve_" + name + "_" +
                 std::to_string(::getpid())))
    {
        std::filesystem::create_directories(_path);
    }
    ~TempDir() { std::filesystem::remove_all(_path); }

    std::string
    file(const std::string &name) const
    {
        return (_path / name).string();
    }

  private:
    std::filesystem::path _path;
};

TEST(ServeDurable, CoordinatorKilledBeforeDurableReleasesTheCell)
{
    // A result the coordinator has RECEIVED but not made durable must
    // not be acknowledged: the cell parks in WaitDurable, and a
    // coordinator SIGKILLed in that window leaves a journal without
    // the record, so the resumed campaign re-leases the cell instead
    // of losing it. The final merged report stays byte-identical.
    std::vector<super::CellSpec> cells = grid(4);
    std::vector<std::string> want = truth(cells);

    TempDir tmp("durable");
    std::string path = tmp.file("camp.journal");

    // A seed whose before-write fault fires at flusher write ordinal
    // 0: the coordinator dies at its FIRST journal batch write — at
    // least one result received, nothing durable yet.
    std::uint64_t seed = 1;
    while (!log::LogChaos::wouldFire(log::LogCrashPoint::BeforeWrite,
                                     seed, 0))
        ++seed;

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        serve::FabricOptions fo = fastOptions();
        fo.journalPath = path;
        fo.logOptions.groupCommitMs = 1;
        fo.logOptions.chaos.point = log::LogCrashPoint::BeforeWrite;
        fo.logOptions.chaos.seed = seed;
        serve::Fabric fabric(fo);
        std::string err;
        if (!fabric.start(&err))
            ::_exit(3);
        fabric.runAll(cells);
        ::_exit(0); // the injected kill never fired
    }
    int st = 0;
    ASSERT_EQ(::waitpid(pid, &st, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL)
        << "coordinator should die at its first journal write, "
        << "status " << st;

    // Restart on the same journal: every cell re-leases (nothing was
    // durable), completes, and the report is byte-identical.
    serve::FabricOptions fo = fastOptions();
    fo.journalPath = path;
    fo.resume = true;
    serve::Fabric fabric(fo);
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;
    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    expectByteIdentical(out, want);
    EXPECT_EQ(fabric.failures(), 0u);
    EXPECT_LT(fabric.skipped(), cells.size())
        << "the unacknowledged cell must re-execute, not be lost";

    // And the resumed session's journal now holds every cell final:
    // a third run replays everything.
    serve::FabricOptions fo2 = fastOptions();
    fo2.journalPath = path;
    fo2.resume = true;
    serve::Fabric fabric2(fo2);
    ASSERT_TRUE(fabric2.start(&err)) << err;
    std::vector<super::CellOutcome> replay = fabric2.runAll(cells);
    expectByteIdentical(replay, want);
    EXPECT_EQ(fabric2.skipped(), cells.size());
}

// --- hedged straggler re-execution ----------------------------------

TEST(ServeHedge, SlowAgentIsHedgedByteIdentical)
{
    std::vector<super::CellSpec> cells = grid(6);
    std::vector<std::string> want = truth(cells);

    serve::FabricOptions fo = fastOptions();
    // The first-registered agent delays every cell by
    // kSlowCellDelayMs (1500 ms); an explicit 200 ms hedge threshold
    // guarantees every one of its leases straggles past it.
    fo.localFallback = false;
    fo.chaosProfile = serve::FabricProfile::Slow;
    fo.chaosSeed = 5;
    fo.hedgeAfterMs = 200;
    serve::Fabric fabric(fo);
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;

    pid_t a = spawnAgent(fabric.port(), 2);
    pid_t b = spawnAgent(fabric.port(), 2);
    pid_t c = spawnAgent(fabric.port(), 2);
    awaitAgents(fabric, 3);

    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    expectByteIdentical(out, want);
    EXPECT_GT(fabric.hedges(), 0u)
        << "the slow agent's leases must be hedged";
    EXPECT_EQ(fabric.failures(), 0u);
    // A hedge loser is a counted no-op, never a reassignment.
    EXPECT_EQ(fabric.completed(), cells.size());

    reapAgent(a);
    reapAgent(b);
    reapAgent(c);
}

TEST(ServeHedge, HedgingDisabledCutsNoHedges)
{
    std::vector<super::CellSpec> cells = grid(3);
    std::vector<std::string> want = truth(cells);

    serve::FabricOptions fo = fastOptions();
    fo.hedgeMax = 0; // hedging off
    fo.hedgeAfterMs = 1;
    serve::Fabric fabric(fo);
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;

    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    expectByteIdentical(out, want);
    EXPECT_EQ(fabric.hedges(), 0u);
}

// --- result-integrity audits ----------------------------------------

TEST(ServeAudit, CleanFleetAuditsAllMatch)
{
    std::vector<super::CellSpec> cells = grid(4);
    std::vector<std::string> want = truth(cells);

    serve::FabricOptions fo = fastOptions();
    fo.localFallback = false;
    fo.auditFrac = 1.0; // audit every clean remote result
    serve::Fabric fabric(fo);
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;

    pid_t a = spawnAgent(fabric.port(), 2);
    pid_t b = spawnAgent(fabric.port(), 2);
    awaitAgents(fabric, 2);

    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    expectByteIdentical(out, want);
    EXPECT_EQ(fabric.auditsRun(), cells.size());
    EXPECT_EQ(fabric.auditsPassed(), cells.size());
    EXPECT_EQ(fabric.auditsDiverged(), 0u);
    EXPECT_EQ(fabric.agentsQuarantined(), 0u);
    EXPECT_EQ(fabric.failures(), 0u);

    reapAgent(a);
    reapAgent(b);
}

TEST(ServeAudit, LiarAgentIsQuarantinedReportStaysClean)
{
    std::vector<super::CellSpec> cells = grid(6);
    std::vector<std::string> want = truth(cells);

    serve::FabricOptions fo = fastOptions();
    // The first-registered agent flips one bit in every result it
    // returns; with three agents (plus the local tie-break executor)
    // the audit vote always has an honest majority.
    fo.chaosProfile = serve::FabricProfile::Liar;
    fo.chaosSeed = 9;
    fo.auditFrac = 1.0;
    serve::Fabric fabric(fo);
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;

    pid_t a = spawnAgent(fabric.port(), 2);
    pid_t b = spawnAgent(fabric.port(), 2);
    pid_t c = spawnAgent(fabric.port(), 2);
    awaitAgents(fabric, 3);

    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    // The whole point: corrupt bytes never reach the report.
    expectByteIdentical(out, want);
    EXPECT_GE(fabric.auditsDiverged(), 1u);
    EXPECT_EQ(fabric.agentsQuarantined(), 1u)
        << "exactly the liar is quarantined";
    EXPECT_EQ(fabric.failures(), 0u);

    reapAgent(a);
    reapAgent(b);
    reapAgent(c);
}

// --- admission control ----------------------------------------------

/** Parse one JSON line ("" and bad JSON are fatal). */
triage::JsonValue
parseDoc(const std::string &line)
{
    triage::JsonValue doc;
    std::string err;
    EXPECT_TRUE(triage::JsonValue::parse(line, &doc, &err)) << err;
    return doc;
}

/** A syntactically valid submission body (content never executed —
 *  these tests exercise the queue, not the campaign). */
std::string
dummySubmit()
{
    triage::JsonValue campaign;
    std::string err;
    EXPECT_TRUE(
        triage::JsonValue::parse("{\"kind\":\"sweep\"}", &campaign, &err));
    return serve::proto::submit(campaign);
}

TEST(ServeAdmission, QueueFullShedsWithRetryAfter)
{
    serve::FabricOptions fo = fastOptions();
    fo.maxQueued = 1;
    serve::Fabric fabric(fo);
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;
    std::string target = "127.0.0.1:" + std::to_string(fabric.port());

    // First client fills the queue (nothing pops it).
    int first = serve::connectTo(target, &err);
    ASSERT_GE(first, 0) << err;
    ASSERT_TRUE(serve::sendLine(first, dummySubmit(), &err)) << err;
    for (int i = 0; i < 20; ++i)
        fabric.pump(10);

    // Second client must be shed with a structured retry hint.
    int second = serve::connectTo(target, &err);
    ASSERT_GE(second, 0) << err;
    ASSERT_TRUE(serve::sendLine(second, dummySubmit(), &err)) << err;

    serve::LineReader reader(second);
    std::string line;
    bool got = false;
    for (int i = 0; i < 100 && !got; ++i) {
        fabric.pump(10);
        struct pollfd p = {second, POLLIN, 0};
        if (::poll(&p, 1, 0) == 1)
            got = reader.next(&line, &err, 1000);
    }
    ASSERT_TRUE(got) << "no shed reply: " << err;
    triage::JsonValue doc = parseDoc(line);
    EXPECT_EQ(doc.getString("type"), "error");
    EXPECT_NE(doc.getU64("retry_after_ms"), 0u)
        << "shed error must carry the retry hint";
    EXPECT_EQ(fabric.shedSubmissions(), 1u);

    ::close(first);
    ::close(second);
}

TEST(ServeAdmission, PopSubmissionAlternatesBetweenClients)
{
    serve::Fabric fabric(fastOptions());
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;
    std::string target = "127.0.0.1:" + std::to_string(fabric.port());

    // Client A queues two campaigns before client B queues one.
    int a = serve::connectTo(target, &err);
    ASSERT_GE(a, 0) << err;
    ASSERT_TRUE(serve::sendLine(a, dummySubmit(), &err)) << err;
    ASSERT_TRUE(serve::sendLine(a, dummySubmit(), &err)) << err;
    for (int i = 0; i < 20; ++i)
        fabric.pump(10);
    int b = serve::connectTo(target, &err);
    ASSERT_GE(b, 0) << err;
    ASSERT_TRUE(serve::sendLine(b, dummySubmit(), &err)) << err;
    for (int i = 0; i < 20; ++i)
        fabric.pump(10); // let B's submission land before popping

    serve::Fabric::Submission s1, s2, s3;
    auto popOne = [&](serve::Fabric::Submission *s) {
        for (int i = 0; i < 200; ++i) {
            if (fabric.popSubmission(s))
                return true;
            fabric.pump(10);
        }
        return false;
    };
    ASSERT_TRUE(popOne(&s1));
    ASSERT_TRUE(popOne(&s2));
    ASSERT_TRUE(popOne(&s3));

    // Fair service: A's first (oldest), then B's (a different
    // client), then back to A's second — not A, A, B.
    EXPECT_EQ(s1.client, s3.client);
    EXPECT_NE(s1.client, s2.client)
        << "the second pop must serve the other client";

    ::close(a);
    ::close(b);
}

// --- client-side submit deadline ------------------------------------

TEST(ServeTimeout, SubmitTimesOutOnSilentCoordinator)
{
    // A listener that accepts but never answers: the classic hung
    // coordinator. The submit helper must fail with a structured
    // timeout instead of wedging forever.
    std::string err;
    int listener = serve::listenOn(0, &err);
    ASSERT_GE(listener, 0) << err;
    std::string target =
        "127.0.0.1:" + std::to_string(serve::boundPort(listener));

    sim::ChaosSweepParams params;
    params.seeds = {1};
    params.configs = {"dsre"};
    triage::ProgramRef ref;
    ref.kernel = "parserish";
    ref.params.iterations = 10;

    sim::ChaosSweepReport report;
    bool interrupted = false;
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(serve::submitSweep(target, params, ref, &report,
                                    &interrupted, &err,
                                    /*timeoutMs=*/400));
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    EXPECT_NE(err.find("timed out"), std::string::npos) << err;
    EXPECT_LT(secs, 10.0) << "deadline did not bound the wait";
    ::close(listener);
}

// --- durable log fails mid-campaign ---------------------------------

TEST(ServeDurable, FailFsyncMidCampaignStillCompletes)
{
    // The non-lethal log fault: an fsync fails and the log goes
    // sticky-failed, so the durable watermark never reaches the
    // parked WaitDurable cells. The campaign must complete anyway
    // (results are already merged; the lost records re-run on
    // --resume) instead of wedging on an ack that can never come.
    std::vector<super::CellSpec> cells = grid(4);
    std::vector<std::string> want = truth(cells);

    TempDir tmp("failfsync");
    std::uint64_t seed = 1;
    while (!log::LogChaos::wouldFire(log::LogCrashPoint::FailFsync,
                                     seed, 0))
        ++seed;

    serve::FabricOptions fo = fastOptions();
    fo.journalPath = tmp.file("camp.journal");
    fo.logOptions.groupCommitMs = 1;
    fo.logOptions.chaos.point = log::LogCrashPoint::FailFsync;
    fo.logOptions.chaos.seed = seed;
    serve::Fabric fabric(fo);
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;

    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    expectByteIdentical(out, want);
    EXPECT_EQ(fabric.failures(), 0u);
    EXPECT_EQ(fabric.completed(), cells.size())
        << "WaitDurable cells must complete on the failed-log path";
}

// --- stop semantics -------------------------------------------------

TEST(ServeStop, RequestStopLeavesUnrunCellsResumable)
{
    std::vector<super::CellSpec> cells = grid(3);
    serve::Fabric fabric(fastOptions());
    std::string err;
    ASSERT_TRUE(fabric.start(&err)) << err;
    fabric.requestStop();
    std::vector<super::CellOutcome> out = fabric.runAll(cells);
    ASSERT_EQ(out.size(), 3u);
    for (const super::CellOutcome &o : out)
        EXPECT_FALSE(o.ran);
}

} // namespace
} // namespace edge

int
main(int argc, char **argv)
{
    // The default worker image is /proc/self/exe — this binary.
    // Dispatch the worker and agent personalities before gtest sees
    // argv.
    if (argc >= 2 && std::strcmp(argv[1], "--worker-cell") == 0)
        return edge::super::workerCellMain(std::cin, std::cout);
    if (argc >= 3 && std::strcmp(argv[1], "--serve-agent") == 0) {
        edge::serve::AgentOptions ao;
        ao.coordinator = argv[2];
        for (int i = 3; i + 1 < argc; i += 2) {
            if (std::strcmp(argv[i], "--slots") == 0)
                ao.slots = static_cast<unsigned>(
                    std::strtoul(argv[i + 1], nullptr, 10));
            else if (std::strcmp(argv[i], "--die-after") == 0)
                ao.dieAfterResults =
                    std::strtoull(argv[i + 1], nullptr, 10);
        }
        return edge::serve::agentMain(ao);
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
