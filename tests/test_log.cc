/**
 * @file
 * Tests for the durable result log (src/log/): block format and LSN
 * arithmetic, group-commit batching, overflow chains, segment
 * rotation, and — the point of the subsystem — the crash-recovery
 * matrix. Every named crash point of the LogChaos injector is fired
 * in a forked child (which dies by real SIGKILL mid-write, mid-fsync
 * or mid-rotation), and the parent must recover the valid prefix,
 * re-append the missing records, and end up with a per-cell record
 * map byte-identical to the uninterrupted run — with the recovery
 * scan itself byte-identical at 1 and 8 redo workers. Variants layer
 * extra damage on the crash: an additionally-torn tail (legal,
 * dropped) and a bit-flipped block (corruption, rejected naming the
 * LSN).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "log/log_chaos.hh"
#include "log/result_log.hh"

namespace edge {
namespace {

namespace fs = std::filesystem;

class TempDir
{
  public:
    explicit TempDir(const std::string &name)
        : _path(fs::temp_directory_path() /
                ("edge_log_" + name + "_" + std::to_string(::getpid())))
    {
        fs::create_directories(_path);
    }
    ~TempDir() { fs::remove_all(_path); }

    std::string
    file(const std::string &name) const
    {
        return (_path / name).string();
    }

  private:
    fs::path _path;
};

constexpr std::uint64_t kCells = 10;

std::uint64_t
cellId(std::uint64_t i)
{
    return 0x1000 + i;
}

/** Deterministic, distinctive record payload (~600 bytes so a few
 *  records force a rotation past a 2 KiB segment cap). */
std::string
payloadFor(std::uint64_t i)
{
    std::string p = "{\"cell-" + std::to_string(i) + "\":\"";
    while (p.size() < 600)
        p += static_cast<char>('a' + (i + p.size()) % 26);
    return p + "\"}";
}

std::map<std::uint64_t, std::string>
recordMap(const std::vector<log::RawRecord> &recs)
{
    std::map<std::uint64_t, std::string> m;
    for (const log::RawRecord &r : recs)
        m[r.cell] = r.payload;
    return m;
}

/** A seed whose armed fault fires first at exactly `ordinal`. */
std::uint64_t
seedFiringAt(log::LogCrashPoint point, std::uint64_t ordinal)
{
    for (std::uint64_t seed = 1; seed < 1000000; ++seed) {
        bool earlier = false;
        for (std::uint64_t o = 0; o < ordinal && !earlier; ++o)
            earlier = log::LogChaos::wouldFire(point, seed, o);
        if (!earlier && log::LogChaos::wouldFire(point, seed, ordinal))
            return seed;
    }
    ADD_FAILURE() << "no firing seed found";
    return 1;
}

/** The newest segment file of a log directory ("" if none). */
std::string
lastSegment(const std::string &dir)
{
    std::string last;
    for (const auto &e : fs::directory_iterator(dir)) {
        std::string p = e.path().string();
        if (p.size() > 5 &&
            p.compare(p.size() - 5, 5, ".elog") == 0 &&
            (last.empty() || p > last))
            last = p;
    }
    return last;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << bytes;
}

/** Child body: append the campaign one durable record at a time so
 *  every record is its own write+fsync and the armed fault's ordinal
 *  selects which one dies. Never returns. */
[[noreturn]] void
childAppendLoop(const std::string &dir, log::LogCrashPoint point,
                std::uint64_t seed, std::uint64_t segmentBytes)
{
    log::ResultLog lg;
    log::LogOptions opts;
    opts.groupCommitMs = 1;
    opts.segmentBytes = segmentBytes;
    opts.chaos.point = point;
    opts.chaos.seed = seed;
    std::string err;
    if (!lg.open(dir, "test-build", opts, 1, &err))
        ::_exit(3);
    for (std::uint64_t i = 0; i < kCells; ++i) {
        std::uint64_t lsn = lg.append(cellId(i), payloadFor(i));
        if (lsn == 0)
            ::_exit(4);
        lg.waitDurable(lsn);
    }
    lg.close();
    ::_exit(0); // the fault never fired — the matrix seed is wrong
}

enum class Damage
{
    Clean,   ///< recover exactly what the crash left
    TornTail, ///< additionally chop bytes off the newest segment
    BitFlip, ///< flip one byte in a complete block: must reject
};

void
crashMatrixCase(log::LogCrashPoint point, Damage damage)
{
    SCOPED_TRACE(std::string(log::logCrashPointName(point)) + "/" +
                 (damage == Damage::Clean      ? "clean"
                  : damage == Damage::TornTail ? "torn-tail"
                                               : "bit-flip"));
    TempDir tmp(std::string("crash_") + log::logCrashPointName(point));
    const std::string dir = tmp.file("log");

    // before-rotate needs a tiny segment cap so a rotation happens at
    // all; its ordinal is the new segment number (first rotation = 2).
    const bool rotate = point == log::LogCrashPoint::BeforeRotate;
    const std::uint64_t segBytes = rotate ? 2048 : 64ull << 20;
    const std::uint64_t seed = seedFiringAt(point, rotate ? 2 : 3);

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0)
        childAppendLoop(dir, point, seed, segBytes);
    int st = 0;
    ASSERT_EQ(::waitpid(pid, &st, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL)
        << "child should die by its own SIGKILL, status " << st;

    if (damage == Damage::TornTail) {
        std::string seg = lastSegment(dir);
        ASSERT_FALSE(seg.empty());
        std::uintmax_t size = fs::file_size(seg);
        if (size > log::kBlockHeaderBytes + 5)
            fs::resize_file(seg, size - 5);
    }

    if (damage == Damage::BitFlip) {
        // Corrupt a COMPLETE block (record 0 is durable at every
        // matrix seed): recovery must reject the log naming the LSN,
        // never silently drop or "repair" it.
        std::string seg =
            dir + "/" + log::segmentFileName(1);
        std::string bytes = slurp(seg);
        std::size_t pos = bytes.find("cell-0");
        ASSERT_NE(pos, std::string::npos);
        bytes[pos] ^= 0x20;
        spit(seg, bytes);

        std::vector<log::RawRecord> recs;
        std::string build, err;
        log::ReplayStats stats;
        EXPECT_FALSE(log::ResultLog::scan(dir, 1, &recs, &build,
                                          &stats, &err));
        EXPECT_NE(err.find("checksum mismatch"), std::string::npos)
            << err;
        EXPECT_NE(err.find("lsn"), std::string::npos) << err;
        std::string err8;
        EXPECT_FALSE(log::ResultLog::scan(dir, 8, &recs, &build,
                                          &stats, &err8));
        EXPECT_EQ(err, err8); // deterministic at any worker count
        return;
    }

    // Recovery is byte-identical at 1 and 8 redo workers.
    std::vector<log::RawRecord> r1, r8;
    std::string b1, b8, err;
    log::ReplayStats s1, s8;
    ASSERT_TRUE(log::ResultLog::scan(dir, 1, &r1, &b1, &s1, &err))
        << err;
    ASSERT_TRUE(log::ResultLog::scan(dir, 8, &r8, &b8, &s8, &err))
        << err;
    ASSERT_EQ(r1.size(), r8.size());
    for (std::size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].cell, r8[i].cell);
        EXPECT_EQ(r1[i].lsn, r8[i].lsn);
        EXPECT_EQ(r1[i].payload, r8[i].payload);
    }
    EXPECT_EQ(b1, b8);
    EXPECT_LT(r1.size(), kCells); // the crash lost something

    // Resume: open for append (truncates the torn tail), re-execute
    // exactly the missing cells.
    log::ResultLog lg;
    log::LogOptions opts;
    opts.groupCommitMs = 1;
    opts.segmentBytes = segBytes;
    ASSERT_TRUE(lg.open(dir, "test-build", opts, 1, &err)) << err;
    std::map<std::uint64_t, std::string> have = recordMap(lg.loaded());
    for (std::uint64_t i = 0; i < kCells; ++i)
        if (have.find(cellId(i)) == have.end())
            ASSERT_NE(lg.append(cellId(i), payloadFor(i)), 0u);
    ASSERT_TRUE(lg.flush());
    lg.close();

    // The merged per-cell map is byte-identical to an uninterrupted
    // campaign, whichever instant the crash hit.
    std::vector<log::RawRecord> fin;
    std::string build;
    log::ReplayStats stats;
    ASSERT_TRUE(log::ResultLog::scan(dir, 8, &fin, &build, &stats,
                                     &err))
        << err;
    std::map<std::uint64_t, std::string> m = recordMap(fin);
    ASSERT_EQ(m.size(), kCells);
    for (std::uint64_t i = 0; i < kCells; ++i)
        EXPECT_EQ(m[cellId(i)], payloadFor(i)) << "cell " << i;
}

const log::LogCrashPoint kLethalPoints[] = {
    log::LogCrashPoint::BeforeWrite,  log::LogCrashPoint::MidWrite,
    log::LogCrashPoint::AfterWrite,   log::LogCrashPoint::BeforeFsync,
    log::LogCrashPoint::AfterFsync,   log::LogCrashPoint::BeforeRotate,
};

TEST(LogCrashMatrix, EveryCrashPointRecoversClean)
{
    for (log::LogCrashPoint p : kLethalPoints)
        crashMatrixCase(p, Damage::Clean);
}

TEST(LogCrashMatrix, EveryCrashPointRecoversWithExtraTornTail)
{
    for (log::LogCrashPoint p : kLethalPoints)
        crashMatrixCase(p, Damage::TornTail);
}

TEST(LogCrashMatrix, EveryCrashPointRejectsBitFlip)
{
    for (log::LogCrashPoint p : kLethalPoints)
        crashMatrixCase(p, Damage::BitFlip);
}

TEST(LogCrashMatrix, FailedFsyncIsStickyAndResumable)
{
    // The one non-lethal fault: the fsync "fails" (as a real EIO
    // would), the log goes sticky-failed in-process, and a later
    // session recovers and completes the campaign.
    TempDir tmp("failfsync");
    const std::string dir = tmp.file("log");
    const std::uint64_t seed =
        seedFiringAt(log::LogCrashPoint::FailFsync, 1);

    log::ResultLog lg;
    log::LogOptions opts;
    opts.groupCommitMs = 1;
    opts.chaos.point = log::LogCrashPoint::FailFsync;
    opts.chaos.seed = seed;
    std::string err;
    ASSERT_TRUE(lg.open(dir, "test-build", opts, 1, &err)) << err;

    std::uint64_t lsn0 = lg.append(cellId(0), payloadFor(0));
    ASSERT_NE(lsn0, 0u);
    ASSERT_TRUE(lg.waitDurable(lsn0)); // fsync ordinal 0: fine

    std::uint64_t lsn1 = lg.append(cellId(1), payloadFor(1));
    ASSERT_NE(lsn1, 0u);
    EXPECT_FALSE(lg.waitDurable(lsn1)); // ordinal 1: injected failure
    EXPECT_TRUE(lg.failed());
    EXPECT_FALSE(lg.error().empty());
    EXPECT_EQ(lg.append(cellId(2), payloadFor(2)), 0u); // sticky
    EXPECT_LT(lg.durableLsn(), lsn1);
    lg.close();

    // Recovery (no chaos): whatever survived is a valid prefix;
    // re-append the rest and the campaign completes byte-identically.
    log::ResultLog lg2;
    ASSERT_TRUE(lg2.open(dir, "test-build", log::LogOptions{}, 1,
                         &err))
        << err;
    std::map<std::uint64_t, std::string> have =
        recordMap(lg2.loaded());
    EXPECT_GE(have.size(), 1u); // record 0 was acknowledged durable
    EXPECT_EQ(have[cellId(0)], payloadFor(0));
    for (std::uint64_t i = 0; i < kCells; ++i)
        if (have.find(cellId(i)) == have.end())
            ASSERT_NE(lg2.append(cellId(i), payloadFor(i)), 0u);
    ASSERT_TRUE(lg2.flush());
    lg2.close();

    std::vector<log::RawRecord> fin;
    std::string build;
    log::ReplayStats stats;
    ASSERT_TRUE(log::ResultLog::scan(dir, 4, &fin, &build, &stats,
                                     &err))
        << err;
    std::map<std::uint64_t, std::string> m = recordMap(fin);
    ASSERT_EQ(m.size(), kCells);
    for (std::uint64_t i = 0; i < kCells; ++i)
        EXPECT_EQ(m[cellId(i)], payloadFor(i));
}

// --- format and group-commit units ----------------------------------

TEST(ResultLog, AckLsnsAreMonotonicAndDurabilityGates)
{
    TempDir tmp("lsn");
    log::ResultLog lg;
    std::string err;
    ASSERT_TRUE(lg.open(tmp.file("log"), "test-build",
                        log::LogOptions{}, 1, &err))
        << err;

    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < 5; ++i) {
        std::uint64_t lsn = lg.append(cellId(i), payloadFor(i));
        ASSERT_GT(lsn, prev);
        prev = lsn;
    }
    ASSERT_TRUE(lg.waitDurable(prev));
    EXPECT_GE(lg.durableLsn(), prev);
    EXPECT_EQ(lg.appendedRecords(), 5u);
    lg.close();
}

TEST(ResultLog, OverflowChainRoundTripsOversizedRecords)
{
    // A record bigger than the block payload cap splits into an
    // overflow chain and must scan back byte-exactly.
    TempDir tmp("chain");
    const std::string dir = tmp.file("log");
    std::string big(2 * log::kMaxBlockPayload + 12345, 'x');
    for (std::size_t i = 0; i < big.size(); i += 97)
        big[i] = static_cast<char>('A' + i % 26);

    std::string err;
    {
        log::ResultLog lg;
        ASSERT_TRUE(lg.open(dir, "test-build", log::LogOptions{}, 1,
                            &err))
            << err;
        ASSERT_NE(lg.append(7, payloadFor(1)), 0u);
        ASSERT_NE(lg.append(8, big), 0u);
        ASSERT_NE(lg.append(9, payloadFor(2)), 0u);
        ASSERT_TRUE(lg.flush());
        lg.close();
    }

    std::vector<log::RawRecord> recs;
    std::string build;
    log::ReplayStats stats;
    ASSERT_TRUE(log::ResultLog::scan(dir, 1, &recs, &build, &stats,
                                     &err))
        << err;
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].payload, payloadFor(1));
    EXPECT_EQ(recs[1].cell, 8u);
    EXPECT_EQ(recs[1].payload, big);
    EXPECT_EQ(recs[2].payload, payloadFor(2));
    EXPECT_EQ(build, "test-build");
}

TEST(ResultLog, RotationMergesSegmentsAtAnyWorkerCount)
{
    TempDir tmp("rotate");
    const std::string dir = tmp.file("log");
    std::string err;
    {
        log::ResultLog lg;
        log::LogOptions opts;
        opts.segmentBytes = 4096; // force many rotations
        ASSERT_TRUE(lg.open(dir, "test-build", opts, 1, &err)) << err;
        for (std::uint64_t i = 0; i < 40; ++i) {
            ASSERT_NE(lg.append(cellId(i), payloadFor(i)), 0u);
            // Seal a block every few records; rotation happens at
            // block boundaries, so one giant batch would pack all 40
            // records into a single block.
            if (i % 4 == 3)
                ASSERT_TRUE(lg.flush());
        }
        ASSERT_TRUE(lg.flush());
        lg.close();
    }
    std::size_t segments = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        (void)e;
        ++segments;
    }
    EXPECT_GT(segments, 3u);

    std::vector<log::RawRecord> r1, r8;
    std::string b1, b8;
    log::ReplayStats s1, s8;
    ASSERT_TRUE(log::ResultLog::scan(dir, 1, &r1, &b1, &s1, &err))
        << err;
    ASSERT_TRUE(log::ResultLog::scan(dir, 8, &r8, &b8, &s8, &err))
        << err;
    ASSERT_EQ(r1.size(), 40u);
    ASSERT_EQ(r8.size(), 40u);
    for (std::size_t i = 0; i < 40; ++i) {
        EXPECT_EQ(r1[i].cell, r8[i].cell);
        EXPECT_EQ(r1[i].lsn, r8[i].lsn);
        EXPECT_EQ(r1[i].payload, r8[i].payload);
        EXPECT_EQ(r1[i].cell, cellId(i)); // append order preserved
    }
    EXPECT_EQ(s1.segments, s8.segments);
    EXPECT_GT(s1.segments, 3u);

    // Reopening appends into the NEWEST segment, not a fresh one.
    {
        log::ResultLog lg;
        log::LogOptions opts;
        opts.segmentBytes = 4096;
        ASSERT_TRUE(lg.open(dir, "test-build", opts, 1, &err)) << err;
        EXPECT_EQ(lg.loaded().size(), 40u);
        ASSERT_NE(lg.append(cellId(40), payloadFor(40)), 0u);
        ASSERT_TRUE(lg.flush());
        lg.close();
    }
    r1.clear();
    ASSERT_TRUE(log::ResultLog::scan(dir, 3, &r1, &b1, &s1, &err))
        << err;
    EXPECT_EQ(r1.size(), 41u);
}

TEST(ResultLog, GroupCommitAmortizesFsyncs)
{
    // Concurrent producers inside one commit window share fsyncs:
    // far fewer fsyncs than records is the whole point of the log.
    TempDir tmp("group");
    log::ResultLog lg;
    log::LogOptions opts;
    opts.groupCommitMs = 20;
    std::string err;
    ASSERT_TRUE(lg.open(tmp.file("log"), "test-build", opts, 1, &err))
        << err;

    constexpr int kProducers = 4;
    constexpr int kPer = 100;
    std::vector<std::thread> threads;
    for (int t = 0; t < kProducers; ++t)
        threads.emplace_back([&lg, t] {
            for (int i = 0; i < kPer; ++i)
                lg.append(cellId(t * kPer + i),
                          payloadFor(t * kPer + i));
        });
    for (std::thread &th : threads)
        th.join();
    ASSERT_TRUE(lg.flush());
    EXPECT_EQ(lg.appendedRecords(),
              static_cast<std::uint64_t>(kProducers * kPer));
    EXPECT_LT(lg.fsyncs(), lg.appendedRecords() / 4);
    lg.close();
}

TEST(ResultLog, MetaBlocksCarrySessionNotesInvisibleToRecords)
{
    TempDir tmp("meta");
    const std::string dir = tmp.file("log");
    std::string err;
    {
        log::ResultLog lg;
        ASSERT_TRUE(lg.open(dir, "test-build", log::LogOptions{}, 1,
                            &err))
            << err;
        ASSERT_NE(lg.append(1, payloadFor(1)), 0u);
        ASSERT_NE(lg.appendMeta("{\"meta\":\"resume\"}"), 0u);
        ASSERT_NE(lg.append(2, payloadFor(2)), 0u);
        ASSERT_TRUE(lg.flush());
        lg.close();
    }
    std::vector<log::RawRecord> recs;
    std::string build;
    log::ReplayStats stats;
    ASSERT_TRUE(log::ResultLog::scan(dir, 1, &recs, &build, &stats,
                                     &err))
        << err;
    ASSERT_EQ(recs.size(), 2u); // meta blocks are not records
    EXPECT_GE(stats.metaBlocks, 2u); // segment header + resume note
}

TEST(ResultLog, ReadBuildLineIsACheapProvenanceProbe)
{
    TempDir tmp("probe");
    const std::string dir = tmp.file("log");
    std::string err;
    {
        log::ResultLog lg;
        ASSERT_TRUE(lg.open(dir, "some build line", log::LogOptions{},
                            1, &err))
            << err;
        lg.close();
    }
    std::string line;
    ASSERT_TRUE(log::ResultLog::readBuildLine(dir, &line, &err))
        << err;
    EXPECT_EQ(line, "some build line");
}

TEST(LogChaos, DecisionsAreDeterministicAndSeedSelective)
{
    using log::LogChaos;
    using log::LogCrashPoint;
    // Pure function of (point, seed, ordinal).
    for (std::uint64_t o = 0; o < 64; ++o)
        EXPECT_EQ(
            LogChaos::wouldFire(LogCrashPoint::BeforeFsync, 42, o),
            LogChaos::wouldFire(LogCrashPoint::BeforeFsync, 42, o));
    // Roughly 1-in-4 fire; over 256 ordinals both extremes are
    // astronomically unlikely.
    int fired = 0;
    for (std::uint64_t o = 0; o < 256; ++o)
        fired +=
            LogChaos::wouldFire(LogCrashPoint::MidWrite, 7, o) ? 1 : 0;
    EXPECT_GT(fired, 16);
    EXPECT_LT(fired, 240);
    // Distinct points decide independently.
    bool differs = false;
    for (std::uint64_t o = 0; o < 256 && !differs; ++o)
        differs = LogChaos::wouldFire(LogCrashPoint::MidWrite, 7, o) !=
                  LogChaos::wouldFire(LogCrashPoint::AfterWrite, 7, o);
    EXPECT_TRUE(differs);

    // Round-trip the CLI names.
    for (LogCrashPoint p :
         {LogCrashPoint::BeforeWrite, LogCrashPoint::MidWrite,
          LogCrashPoint::AfterWrite, LogCrashPoint::BeforeFsync,
          LogCrashPoint::AfterFsync, LogCrashPoint::BeforeRotate,
          LogCrashPoint::FailFsync}) {
        LogCrashPoint back = LogCrashPoint::None;
        ASSERT_TRUE(
            log::logCrashPointByName(log::logCrashPointName(p), &back));
        EXPECT_EQ(back, p);
    }
    LogCrashPoint none = LogCrashPoint::None;
    EXPECT_FALSE(log::logCrashPointByName("no-such-point", &none));
}

TEST(LogChaos, TearBytesStayInsideTheWrite)
{
    log::LogChaosOptions o;
    o.point = log::LogCrashPoint::MidWrite;
    o.seed = 99;
    log::LogChaos chaos(o);
    for (std::uint64_t ord = 0; ord < 64; ++ord) {
        std::size_t t = chaos.tearBytes(ord, 644);
        EXPECT_GE(t, 1u);
        EXPECT_LT(t, 644u);
    }
    EXPECT_EQ(chaos.tearBytes(0, 1), 0u);
}

} // namespace
} // namespace edge
