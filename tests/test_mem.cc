/**
 * @file
 * Unit tests for the memory substrate: byte-accurate sparse memory,
 * the timestamp cache model (hits, misses, LRU, MSHR merging and
 * exhaustion, writebacks, bank ports), the DRAM model, and the
 * assembled hierarchy.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"
#include "mem/sparse_memory.hh"

namespace edge::mem {
namespace {

TEST(SparseMemory, ReadBackWhatWasWritten)
{
    SparseMemory m;
    m.write(0x1000, 8, 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x1000, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x1000, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x1000, 1), 0x88u);
    EXPECT_EQ(m.read(0x1004, 4), 0x11223344u); // little-endian
}

TEST(SparseMemory, UntouchedBytesReadZero)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0xdeadbeef, 8), 0u);
    EXPECT_EQ(m.pagesTouched(), 0u);
}

TEST(SparseMemory, PartialOverwriteMergesBytes)
{
    SparseMemory m;
    m.write(0x10, 8, 0xffffffffffffffffull);
    m.write(0x12, 2, 0xaabb);
    EXPECT_EQ(m.read(0x10, 8), 0xffffffffaabbffffull);
}

TEST(SparseMemory, CrossesPageBoundaries)
{
    SparseMemory m;
    Addr edge_addr = 0x2000 - 4; // 4 KiB pages
    m.write(edge_addr, 8, 0x0102030405060708ull);
    EXPECT_EQ(m.read(edge_addr, 8), 0x0102030405060708ull);
    EXPECT_EQ(m.pagesTouched(), 2u);
}

TEST(SparseMemory, BulkInitAndEquality)
{
    SparseMemory a, b;
    std::uint8_t data[] = {1, 2, 3, 4};
    a.writeBytes(0x100, data, 4);
    EXPECT_FALSE(a.equals(b));
    b.writeBytes(0x100, data, 4);
    EXPECT_TRUE(a.equals(b));
    // Zero writes equal untouched memory.
    a.write(0x9000, 8, 0);
    EXPECT_TRUE(a.equals(b));
}

CacheParams
smallCache()
{
    CacheParams p;
    p.name = "c";
    p.sizeBytes = 1024; // 8 sets x 2 ways x 64 B
    p.assoc = 2;
    p.lineBytes = 64;
    p.hitLatency = 2;
    p.numMshrs = 2;
    return p;
}

TEST(Cache, HitAfterMiss)
{
    StatSet stats("t");
    DramParams dp;
    dp.latency = 100;
    Dram dram(dp, stats);
    Cache c(smallCache(), &dram, stats);

    Cycle miss_done = c.access(0, 0x1000, false);
    EXPECT_GE(miss_done, 100u);
    Cycle hit_done = c.access(miss_done, 0x1000, false);
    EXPECT_EQ(hit_done, miss_done + 2);
    EXPECT_EQ(stats.counterValue("c.hits"), 1u);
    EXPECT_EQ(stats.counterValue("c.misses"), 1u);
}

TEST(Cache, HitOnFillingLineWaitsForFill)
{
    StatSet stats("t");
    DramParams dp;
    dp.latency = 100;
    Dram dram(dp, stats);
    Cache c(smallCache(), &dram, stats);

    Cycle fill = c.access(0, 0x1000, false);
    // Re-access while the line is still in flight: data at fill time.
    Cycle t = c.access(1, 0x1040, false); // other line, bank busy only
    (void)t;
    Cycle again = c.access(2, 0x1008, false); // same line as first
    EXPECT_GE(again, fill);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    StatSet stats("t");
    Cache c(smallCache(), nullptr, stats);
    // Three lines mapping to the same set (stride = 8 sets x 64 B).
    Addr a = 0x0000, b = 0x0200, d = 0x0400;
    Cycle t = 0;
    t = c.access(t, a, false);
    t = c.access(t, b, false);
    t = c.access(t, a, false);      // a is now MRU
    t = c.access(t, d, false);      // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    StatSet stats("t");
    DramParams dp;
    Dram dram(dp, stats);
    Cache c(smallCache(), &dram, stats);
    Cycle t = 0;
    t = c.access(t, 0x0000, true); // dirty
    t = c.access(t, 0x0200, false);
    t = c.access(t, 0x0400, false); // evicts dirty 0x0000
    EXPECT_EQ(stats.counterValue("c.writebacks"), 1u);
    EXPECT_GE(stats.counterValue("dram.writes"), 1u);
}

TEST(Cache, SameLineRequestsShareOneFill)
{
    // The tag is installed at allocate time, so a second request to
    // a line already being filled becomes a hit-under-fill (the
    // timing equivalent of an MSHR merge): one memory read total.
    StatSet stats("t");
    DramParams dp;
    dp.latency = 100;
    Dram dram(dp, stats);
    Cache c(smallCache(), &dram, stats);
    Cycle f1 = c.access(0, 0x1000, false);
    Cycle f2 = c.access(1, 0x1010, false); // same line, in flight
    EXPECT_LE(f2, f1);
    EXPECT_GE(f2, 100u); // still waits for the fill
    EXPECT_EQ(stats.counterValue("dram.reads"), 1u);
    EXPECT_EQ(stats.counterValue("c.hits"), 1u);
}

TEST(Cache, MshrExhaustionDelays)
{
    StatSet stats("t");
    DramParams dp;
    dp.latency = 100;
    Dram dram(dp, stats);
    Cache c(smallCache(), &dram, stats); // 2 MSHRs
    (void)c.access(0, 0x1000, false);
    (void)c.access(1, 0x2000, false);
    Cycle third = c.access(2, 0x3000, false); // must wait for an MSHR
    EXPECT_GE(third, 100u);
    EXPECT_EQ(stats.counterValue("c.mshr_stalls"), 1u);
}

TEST(Cache, InvalidateAllDropsEverything)
{
    StatSet stats("t");
    Cache c(smallCache(), nullptr, stats);
    (void)c.access(0, 0x1000, false);
    EXPECT_TRUE(c.probe(0x1000));
    c.invalidateAll();
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(Dram, LatencyAndChannelOccupancy)
{
    StatSet stats("t");
    DramParams p;
    p.latency = 100;
    p.cyclesPerLine = 4;
    Dram d(p, stats);
    EXPECT_EQ(d.access(10, 0x0, false), 110u);
    // The channel was busy until 14; the next read starts then.
    EXPECT_EQ(d.access(10, 0x40, false), 114u);
    EXPECT_EQ(stats.counterValue("dram.reads"), 2u);
}

TEST(Hierarchy, BankInterleavingByLine)
{
    StatSet stats("t");
    HierarchyParams p;
    Hierarchy h(p, stats);
    EXPECT_EQ(h.bankOf(0x00), h.bankOf(0x3f));  // same 64 B line
    EXPECT_NE(h.bankOf(0x00), h.bankOf(0x40));  // adjacent lines
    unsigned b0 = h.bankOf(0);
    EXPECT_EQ(h.bankOf(0 + 64ull * p.numDBanks), b0); // wraps
}

TEST(Hierarchy, ReadsArePerBankIndependent)
{
    StatSet stats("t");
    HierarchyParams p;
    Hierarchy h(p, stats);
    // Warm both lines (cold misses serialise on the DRAM channel).
    Cycle w = std::max(h.dataRead(0, 0x000), h.dataRead(0, 0x040));
    Cycle a = h.dataRead(w, 0x000);
    Cycle b = h.dataRead(w, 0x040); // different bank: no port clash
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, w + p.l1dHitLatency);
}

TEST(Hierarchy, InstFetchesHitAfterWarmup)
{
    StatSet stats("t");
    HierarchyParams p;
    Hierarchy h(p, stats);
    Cycle first = h.instFetch(0, 0x40000000);
    Cycle second = h.instFetch(first, 0x40000000);
    EXPECT_GT(first, second - first); // second is a short hit
    EXPECT_EQ(stats.counterValue("l1i.hits"), 1u);
}

TEST(Hierarchy, ResetRestoresColdState)
{
    StatSet stats("t");
    HierarchyParams p;
    Hierarchy h(p, stats);
    (void)h.dataRead(0, 0x100);
    EXPECT_TRUE(h.dataProbe(0x100));
    h.reset();
    EXPECT_FALSE(h.dataProbe(0x100));
}

} // namespace
} // namespace edge::mem
