/**
 * @file
 * Differential-fuzzing tests: the generator's well-formedness and
 * termination guarantees, campaign determinism across thread counts,
 * outcome classification, embedded-program JSON round trips, and —
 * on EDGE_MUTATIONS builds — the full pipeline on a planted protocol
 * mutation: find the failure, capture it to a corpus, minimize the
 * program, and replay the shrunk repro to the same failure kind.
 */

#include <filesystem>

#include <gtest/gtest.h>

#include "compiler/ref_executor.hh"
#include "fuzz/diff.hh"
#include "triage/minimize.hh"
#include "triage/program_json.hh"
#include "triage/repro.hh"

namespace edge {
namespace {

/** Fresh scratch directory under the system temp dir. */
class TempDir
{
  public:
    explicit TempDir(const std::string &name)
        : _path(std::filesystem::temp_directory_path() /
                ("edgesim-fuzz-" + name))
    {
        std::filesystem::remove_all(_path);
        std::filesystem::create_directories(_path);
    }

    ~TempDir() { std::filesystem::remove_all(_path); }

    std::string str() const { return _path.string(); }

  private:
    std::filesystem::path _path;
};

// ---------------------------------------------------------------------
// Generator guarantees.
// ---------------------------------------------------------------------

TEST(FuzzGenerator, ProgramsAreValidAndHalt)
{
    const fuzz::GenOptions opts;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        isa::Program prog = fuzz::generate(seed, opts);
        std::vector<isa::ValidationIssue> issues = prog.validateAll();
        ASSERT_TRUE(issues.empty())
            << "seed " << seed << ": " << issues.front().str();
        compiler::RefExecutor ref(prog);
        auto r = ref.run(fuzz::dynBlockBound(opts));
        EXPECT_TRUE(r.halted) << "seed " << seed << " exceeded the "
                              << "static dynamic-block bound";
    }
}

TEST(FuzzGenerator, DeterministicPerSeed)
{
    isa::Program a = fuzz::generate(7);
    isa::Program b = fuzz::generate(7);
    EXPECT_EQ(triage::programHash(a), triage::programHash(b));
    // Different seeds must explore different programs.
    EXPECT_NE(triage::programHash(a),
              triage::programHash(fuzz::generate(8)));
}

TEST(FuzzGenerator, RespectsShapeOptions)
{
    fuzz::GenOptions opts;
    opts.minBlocks = 5;
    opts.maxBlocks = 5;
    isa::Program prog = fuzz::generate(3, opts);
    EXPECT_EQ(prog.numBlocks(), 5u);
    EXPECT_TRUE(prog.validateAll().empty());
}

// ---------------------------------------------------------------------
// Outcome classification.
// ---------------------------------------------------------------------

TEST(FuzzClassify, MapsResultsToOutcomes)
{
    sim::RunResult r;
    r.halted = true;
    r.archMatch = true;
    EXPECT_EQ(fuzz::classify(r), fuzz::Outcome::Pass);

    r.archMatch = false;
    EXPECT_EQ(fuzz::classify(r), fuzz::Outcome::Divergence);

    r.halted = false; // clean error but never finished: budget hang
    EXPECT_EQ(fuzz::classify(r), fuzz::Outcome::Hang);

    r.error.reason = chaos::SimError::Reason::Watchdog;
    EXPECT_EQ(fuzz::classify(r), fuzz::Outcome::Hang);

    r.error.reason = chaos::SimError::Reason::InvariantViolation;
    EXPECT_EQ(fuzz::classify(r), fuzz::Outcome::Crash);

    r.error.reason = chaos::SimError::Reason::ProtocolPanic;
    EXPECT_EQ(fuzz::classify(r), fuzz::Outcome::Crash);
}

// ---------------------------------------------------------------------
// Campaigns.
// ---------------------------------------------------------------------

TEST(FuzzCampaign, CleanOnFixedSeeds)
{
    fuzz::FuzzOptions opts;
    opts.count = 8;
    opts.seed = 1;
    opts.threads = 2;
    fuzz::FuzzReport rep = fuzz::runCampaign(opts);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.programs, 8u);
    EXPECT_EQ(rep.runs, 8u * fuzz::defaultConfigs().size());
    EXPECT_EQ(rep.passes, rep.runs);
}

TEST(FuzzCampaign, ReportIsThreadCountInvariant)
{
    fuzz::FuzzOptions opts;
    opts.count = 6;
    opts.seed = 21;
    opts.threads = 1;
    fuzz::FuzzReport a = fuzz::runCampaign(opts);
    opts.threads = 4;
    fuzz::FuzzReport b = fuzz::runCampaign(opts);
    EXPECT_EQ(a.programs, b.programs);
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.passes, b.passes);
    EXPECT_EQ(a.refHangs, b.refHangs);
    EXPECT_EQ(a.duplicates, b.duplicates);
    ASSERT_EQ(a.failures.size(), b.failures.size());
    for (std::size_t i = 0; i < a.failures.size(); ++i) {
        EXPECT_EQ(a.failures[i].seed, b.failures[i].seed);
        EXPECT_EQ(a.failures[i].signature, b.failures[i].signature);
    }
}

// ---------------------------------------------------------------------
// Embedded-program JSON.
// ---------------------------------------------------------------------

TEST(FuzzProgramJson, LosslessRoundTrip)
{
    isa::Program prog = fuzz::generate(3);
    triage::JsonValue js = triage::programToJson(prog);

    triage::JsonValue parsed;
    std::string err;
    ASSERT_TRUE(triage::JsonValue::parse(js.dump(), &parsed, &err))
        << err;
    isa::Program back("x");
    ASSERT_TRUE(triage::programFromJson(parsed, &back, &err)) << err;
    EXPECT_TRUE(back.validateAll().empty());
    EXPECT_EQ(triage::programHash(prog), triage::programHash(back));
}

#ifdef EDGE_MUTATIONS

// ---------------------------------------------------------------------
// The whole point: a planted protocol bug is found, captured,
// minimized, and the shrunk repro still reproduces it.
// ---------------------------------------------------------------------

TEST(FuzzPipeline, PlantedMutationIsFoundMinimizedAndReplayed)
{
    TempDir dir("planted");
    fuzz::FuzzOptions opts;
    opts.count = 1;
    opts.seed = 57; // known to trip skip-squash (see EXPERIMENTS.md)
    opts.mutation = chaos::Mutation::SkipSquash;
    opts.mutationNode = ~0u; // every node
    opts.checkInvariants = true;
    opts.threads = 2;
    opts.corpusDir = dir.str();

    fuzz::FuzzReport rep = fuzz::runCampaign(opts);
    ASSERT_FALSE(rep.failures.empty());
    const fuzz::FuzzFailure &f = rep.failures.front();
    EXPECT_EQ(f.outcome, fuzz::Outcome::Crash);
    EXPECT_TRUE(f.unique);
    ASSERT_FALSE(f.reproPath.empty());

    // The corpus entry replays bit-identically.
    triage::ReproSpec spec;
    std::string err;
    ASSERT_TRUE(triage::load(f.reproPath, &spec, &err)) << err;
    ASSERT_TRUE(spec.program.hasEmbedded);
    EXPECT_TRUE(triage::sameSignature(spec, triage::replay(spec)));

    // Program-level ddmin shrinks it hard (seed 57: 7 -> 1 block).
    triage::MinimizeOptions mopts;
    mopts.threads = 2;
    triage::ProgramMinimizeResult min =
        triage::minimizeProgram(spec, mopts);
    EXPECT_TRUE(min.converged);
    EXPECT_LE(min.blocksAfter, 3u);
    EXPECT_LT(min.effectsAfter, min.effectsBefore);

    // And the shrunk spec still reproduces the same failure kind.
    triage::ReproSpec shrunk = triage::applyProgram(spec, min.program);
    EXPECT_TRUE(
        triage::sameFailureKind(spec, triage::replay(shrunk)));
}

#endif // EDGE_MUTATIONS

} // namespace
} // namespace edge
