/**
 * @file
 * Property-based testing: a seeded random-program generator builds
 * loops of random dataflow blocks with random memory traffic over a
 * small region (maximising aliasing), and every generated program
 * must commit reference-identical state under every recovery
 * mechanism, window size and dependence policy. This is the fuzzer
 * that guards the DSRE protocol's correctness invariants.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compiler/builder.hh"
#include "sim/simulator.hh"

namespace edge {
namespace {

/**
 * Generate a random two-block loop program. The loop body mixes
 * random arithmetic over a small value pool with loads and stores
 * whose addresses are data-dependent over a tiny region (64 words),
 * so in-flight aliases of every flavour (RMW, silent store, partial
 * overlap via mixed access sizes) occur constantly.
 */
isa::Program
randomProgram(std::uint64_t seed, std::uint64_t iterations)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
    compiler::ProgramBuilder pb("fuzz");
    pb.setInitReg(1, 0);
    pb.setInitReg(2, iterations);
    pb.setInitReg(5, rng.below(1000));
    pb.setInitReg(6, rng.below(1000) | 1);
    {
        std::vector<Word> data(64);
        for (auto &w : data)
            w = rng.next() & 0xffff;
        pb.initDataWords(0x8000, data);
    }

    auto &b = pb.newBlock("loop");
    std::vector<compiler::Val> pool;
    pool.push_back(b.readReg(1));
    pool.push_back(b.readReg(5));
    pool.push_back(b.readReg(6));
    pool.push_back(b.imm(static_cast<std::int64_t>(rng.below(100))));

    auto pick = [&]() -> compiler::Val {
        return pool[rng.below(pool.size())];
    };
    auto addr_of = [&](compiler::Val v) {
        // Confine to [0x8000, 0x8000 + 64*8).
        return b.addi(b.shli(b.andi(v, 63), 3), 0x8000);
    };

    unsigned ops = 6 + static_cast<unsigned>(rng.below(14));
    for (unsigned i = 0; i < ops; ++i) {
        switch (rng.below(8)) {
          case 0:
            pool.push_back(b.add(pick(), pick()));
            break;
          case 1:
            pool.push_back(b.sub(pick(), pick()));
            break;
          case 2:
            pool.push_back(b.mul(pick(), pick()));
            break;
          case 3:
            pool.push_back(
                b.xori(pick(),
                       static_cast<std::int64_t>(rng.below(255))));
            break;
          case 4:
            pool.push_back(b.sel(pick(), pick(), pick()));
            break;
          case 5: {
            unsigned bytes = 1u << rng.below(4); // 1/2/4/8
            pool.push_back(b.load(addr_of(pick()), bytes));
            break;
          }
          case 6: {
            unsigned bytes = 1u << rng.below(4);
            b.store(addr_of(pick()), pick(), bytes);
            break;
          }
          default:
            pool.push_back(b.tlt(pick(), pick()));
            break;
        }
    }
    // Fold a couple of pool values into the live-out registers so
    // random results are architecturally observable.
    b.writeReg(5, b.andi(b.add(pick(), pick()), 0xffffffff));
    b.writeReg(6, b.ori(b.bxor(pick(), pick()), 1));
    compiler::Val i2 = b.addi(pool[0], 1);
    b.writeReg(1, i2);
    b.branchCond(b.tlt(i2, b.readReg(2)), "loop", "done");

    auto &done = pb.newBlock("done");
    done.store(done.imm(0x1000), done.readReg(5), 8);
    done.store(done.imm(0x1008), done.readReg(6), 8);
    done.branchHalt();
    pb.setEntry("loop");
    return pb.build();
}

using FuzzParam = std::tuple<std::uint64_t, std::string>;

class RandomPrograms : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(RandomPrograms, CommitReferenceIdenticalState)
{
    auto [seed, config] = GetParam();
    isa::Program prog = randomProgram(seed, 120);
    sim::Simulator s(std::move(prog), sim::Configs::byName(config));
    sim::RunResult r = s.run(10'000'000);
    ASSERT_TRUE(r.halted) << "seed " << seed << " " << config;
    EXPECT_TRUE(r.archMatch) << "seed " << seed << " " << config;
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, RandomPrograms,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 13),
                       ::testing::ValuesIn(sim::Configs::allNames())),
    [](const auto &info) {
        std::string n = "seed" +
                        std::to_string(std::get<0>(info.param)) + "_" +
                        std::get<1>(info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

class RandomProgramsWindows
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>>
{
};

TEST_P(RandomProgramsWindows, DsreCorrectAtEveryWindowSize)
{
    auto [seed, frames] = GetParam();
    core::MachineConfig cfg = sim::Configs::dsre();
    cfg.core.numFrames = static_cast<unsigned>(frames);
    sim::Simulator s(randomProgram(seed, 100), cfg);
    sim::RunResult r = s.run(10'000'000);
    ASSERT_TRUE(r.halted);
    EXPECT_TRUE(r.archMatch) << "seed " << seed << " frames " << frames;
}

INSTANTIATE_TEST_SUITE_P(
    Windows, RandomProgramsWindows,
    ::testing::Combine(::testing::Range<std::uint64_t>(20, 26),
                       ::testing::Values(1, 2, 4, 16)));

TEST(RandomPrograms, GeneratorIsDeterministic)
{
    isa::Program a = randomProgram(5, 10);
    isa::Program b = randomProgram(5, 10);
    EXPECT_EQ(a.disassemble(), b.disassemble());
}

TEST(RandomPrograms, SeedsProduceDistinctPrograms)
{
    isa::Program a = randomProgram(5, 10);
    isa::Program b = randomProgram(6, 10);
    EXPECT_NE(a.disassemble(), b.disassemble());
}

} // namespace
} // namespace edge
