/**
 * @file
 * End-to-end smoke tests: every mechanism configuration must run a
 * small program to completion and commit exactly the architectural
 * state the functional reference produces.
 */

#include <gtest/gtest.h>

#include "compiler/builder.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace edge {
namespace {

/** Trivial counted loop accumulating i into r5 and memory. */
isa::Program
tinyLoop(std::uint64_t n)
{
    compiler::ProgramBuilder pb("tiny");
    pb.setInitReg(1, 0);
    pb.setInitReg(2, n);
    pb.setInitReg(5, 0);

    auto &loop = pb.newBlock("loop");
    {
        compiler::Val i = loop.readReg(1);
        compiler::Val nn = loop.readReg(2);
        compiler::Val acc = loop.readReg(5);
        loop.writeReg(5, loop.add(acc, i));
        compiler::Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }
    auto &done = pb.newBlock("done");
    {
        done.store(done.imm(0x1000), done.readReg(5), 8);
        done.branchHalt();
    }
    pb.setEntry("loop");
    return pb.build();
}

/** Loop with an intra/inter-block store->load dependence. */
isa::Program
rmwLoop(std::uint64_t n)
{
    compiler::ProgramBuilder pb("rmw");
    pb.setInitReg(1, 0);
    pb.setInitReg(2, n);
    pb.initDataWords(0x2000, {5});

    auto &loop = pb.newBlock("loop");
    {
        compiler::Val i = loop.readReg(1);
        compiler::Val nn = loop.readReg(2);
        compiler::Val v = loop.load(loop.imm(0x2000), 8);
        loop.store(loop.imm(0x2000), loop.addi(v, 3), 8);
        compiler::Val i2 = loop.addi(i, 1);
        loop.writeReg(1, i2);
        loop.branchCond(loop.tlt(i2, nn), "loop", "done");
    }
    auto &done = pb.newBlock("done");
    done.branchHalt();
    pb.setEntry("loop");
    return pb.build();
}

TEST(Smoke, RefExecutorTinyLoop)
{
    isa::Program p = tinyLoop(10);
    compiler::RefExecutor ref(p);
    auto r = ref.run(1000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.dynBlocks, 11u);
    EXPECT_EQ(ref.regs()[5], 45u);
    EXPECT_EQ(ref.memory().read(0x1000, 8), 45u);
}

class SmokeAllConfigs : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SmokeAllConfigs, TinyLoopMatchesReference)
{
    sim::Simulator s(tinyLoop(50), sim::Configs::byName(GetParam()));
    sim::RunResult r = s.run(2'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.archMatch);
    EXPECT_EQ(r.committedBlocks, 51u);
}

TEST_P(SmokeAllConfigs, RmwLoopMatchesReference)
{
    sim::Simulator s(rmwLoop(60), sim::Configs::byName(GetParam()));
    sim::RunResult r = s.run(2'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.archMatch);
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, SmokeAllConfigs,
    ::testing::ValuesIn(sim::Configs::allNames()),
    [](const auto &info) {
        std::string n = info.param;
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace edge
