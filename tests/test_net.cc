/**
 * @file
 * Unit tests for the operand micronetwork: X-Y routing properties
 * (checked exhaustively over all coordinate pairs), hop counting,
 * mesh delivery latency, local bypass, link contention, delivery
 * determinism and reset.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/stats.hh"
#include "net/mesh.hh"
#include "net/route.hh"

namespace edge::net {
namespace {

using CoordPair = std::tuple<int, int, int, int>;

class RouteAllPairs : public ::testing::TestWithParam<CoordPair>
{
};

TEST_P(RouteAllPairs, PathLengthEqualsManhattanDistance)
{
    auto [r0, c0, r1, c1] = GetParam();
    MeshGeom geom{5, 5};
    Coord src{static_cast<std::uint16_t>(r0),
              static_cast<std::uint16_t>(c0)};
    Coord dst{static_cast<std::uint16_t>(r1),
              static_cast<std::uint16_t>(c1)};
    auto path = routeXY(geom, src, dst);
    EXPECT_EQ(path.size(), hopCount(src, dst));
    // Links must be distinct (no loops under dimension order).
    std::set<LinkId> unique(path.begin(), path.end());
    EXPECT_EQ(unique.size(), path.size());
    for (LinkId l : path)
        EXPECT_LT(l, numLinks(geom));
}

INSTANTIATE_TEST_SUITE_P(
    Exhaustive, RouteAllPairs,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 5),
                       ::testing::Range(0, 5), ::testing::Range(0, 5)));

TEST(Route, HopCountIsSymmetric)
{
    Coord a{0, 4}, b{3, 1};
    EXPECT_EQ(hopCount(a, b), hopCount(b, a));
    EXPECT_EQ(hopCount(a, b), 6u);
    EXPECT_EQ(hopCount(a, a), 0u);
}

TEST(Route, SharedPrefixForSameColumnTargets)
{
    // X-then-Y: routes to the same column share the X leg.
    MeshGeom geom{5, 5};
    auto p1 = routeXY(geom, {0, 0}, {3, 2});
    auto p2 = routeXY(geom, {0, 0}, {4, 2});
    ASSERT_GE(p1.size(), 2u);
    EXPECT_EQ(p1[0], p2[0]);
    EXPECT_EQ(p1[1], p2[1]);
}

TEST(Mesh, DeliversAfterHopLatency)
{
    StatSet stats("t");
    MeshParams p;
    p.hopLatency = 1;
    Mesh<int> mesh(p, stats);
    Cycle arrival = mesh.send(10, {0, 0}, {0, 3}, 42);
    EXPECT_EQ(arrival, 13u); // 3 hops x 1 cycle

    int got = -1;
    mesh.deliver(12, [&](Coord, int &&v) { got = v; });
    EXPECT_EQ(got, -1); // not yet
    mesh.deliver(13, [&](Coord, int &&v) { got = v; });
    EXPECT_EQ(got, 42);
    EXPECT_TRUE(mesh.empty());
}

TEST(Mesh, LocalBypassIsFree)
{
    StatSet stats("t");
    Mesh<int> mesh(MeshParams{}, stats);
    EXPECT_EQ(mesh.send(7, {2, 2}, {2, 2}, 1), 7u);
    EXPECT_EQ(stats.counterValue("net.hops"), 0u);
}

TEST(Mesh, HopLatencyScales)
{
    StatSet stats("t");
    MeshParams p;
    p.hopLatency = 3;
    Mesh<int> mesh(p, stats);
    EXPECT_EQ(mesh.send(0, {0, 0}, {2, 2}, 0), 12u); // 4 hops x 3
}

TEST(Mesh, LinkContentionSerialises)
{
    StatSet stats("t");
    Mesh<int> mesh(MeshParams{}, stats);
    // Two messages wanting the same first link in the same cycle.
    Cycle a = mesh.send(0, {0, 0}, {0, 1}, 1);
    Cycle b = mesh.send(0, {0, 0}, {0, 1}, 2);
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u); // waited one cycle for the link
    EXPECT_EQ(stats.counterValue("net.queue_cycles"), 1u);
}

TEST(Mesh, DisjointPathsDoNotContend)
{
    StatSet stats("t");
    Mesh<int> mesh(MeshParams{}, stats);
    Cycle a = mesh.send(0, {0, 0}, {0, 1}, 1);
    Cycle b = mesh.send(0, {1, 0}, {1, 1}, 2);
    EXPECT_EQ(a, b);
    EXPECT_EQ(stats.counterValue("net.queue_cycles"), 0u);
}

TEST(Mesh, DeliveryOrderIsArrivalThenSendOrder)
{
    StatSet stats("t");
    Mesh<int> mesh(MeshParams{}, stats);
    mesh.send(0, {0, 0}, {0, 2}, 1); // 2 hops -> arrives 2
    mesh.send(0, {4, 1}, {4, 2}, 2); // 1 hop  -> arrives 1
    mesh.send(1, {3, 1}, {3, 2}, 3); // 1 hop  -> arrives 2
    std::vector<int> order;
    mesh.deliver(10, [&](Coord, int &&v) { order.push_back(v); });
    EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(Mesh, StatPrefixSeparatesInstances)
{
    StatSet stats("t");
    MeshParams p1;
    MeshParams p2;
    p2.statPrefix = "gcn";
    Mesh<int> a(p1, stats), b(p2, stats);
    a.send(0, {0, 0}, {0, 1}, 1);
    EXPECT_EQ(stats.counterValue("net.messages"), 1u);
    EXPECT_EQ(stats.counterValue("gcn.messages"), 0u);
}

TEST(Mesh, ResetDropsTraffic)
{
    StatSet stats("t");
    Mesh<int> mesh(MeshParams{}, stats);
    mesh.send(0, {0, 0}, {4, 4}, 9);
    EXPECT_EQ(mesh.inFlight(), 1u);
    mesh.reset();
    EXPECT_TRUE(mesh.empty());
    int got = -1;
    mesh.deliver(100, [&](Coord, int &&v) { got = v; });
    EXPECT_EQ(got, -1);
}

} // namespace
} // namespace edge::net
