/**
 * @file
 * Unit tests for the hyperblock construction pipeline: the builder
 * DSL (DCE, fanout trees, read merging, LSID assignment, exit
 * handling), the grid placer, and the functional reference executor
 * (sequential memory semantics, block-atomic register commit,
 * deadlock detection).
 */

#include <gtest/gtest.h>

#include "panic_check.hh"

#include "compiler/builder.hh"
#include "compiler/placement.hh"
#include "compiler/ref_executor.hh"

namespace edge::compiler {
namespace {

using isa::Opcode;
using isa::TargetKind;

TEST(Builder, MinimalProgramValidates)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    b.writeReg(1, b.imm(42));
    b.branchHalt();
    isa::Program p = pb.build();
    EXPECT_EQ(p.numBlocks(), 1u);
    std::string why;
    EXPECT_TRUE(p.validate(&why)) << why;
}

TEST(Builder, DeadCodeIsEliminated)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    compiler::Val live = b.imm(1);
    b.add(b.imm(2), b.imm(3)); // dead: result unused
    b.writeReg(1, live);
    b.branchHalt();
    isa::Program p = pb.build();
    // movi(1) + bro: dead add and its immediates are gone.
    EXPECT_EQ(p.block(0).insts().size(), 2u);
}

TEST(Builder, StoresAreNeverDead)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    b.store(b.imm(0x100), b.imm(9), 8);
    b.branchHalt();
    isa::Program p = pb.build();
    EXPECT_EQ(p.block(0).numStores(), 1u);
}

TEST(Builder, FanoutTreesRespectTargetLimit)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    compiler::Val v = b.imm(7);
    // 9 consumers of one value forces MOV-tree insertion.
    compiler::Val acc = b.addi(v, 0);
    for (int i = 0; i < 8; ++i)
        acc = b.add(acc, v);
    b.writeReg(1, acc);
    b.branchHalt();
    isa::Program p = pb.build();
    std::string why;
    ASSERT_TRUE(p.validate(&why)) << why;
    unsigned movs = 0;
    for (const auto &in : p.block(0).insts())
        movs += in.op == Opcode::MOV;
    EXPECT_GE(movs, 4u); // ceil tree for 9 consumers
}

TEST(Builder, FanoutPreservesSemantics)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    compiler::Val v = b.imm(5);
    compiler::Val sum = b.imm(0);
    for (int i = 0; i < 10; ++i)
        sum = b.add(sum, v);
    b.writeReg(1, sum);
    b.branchHalt();
    RefExecutor ref(pb.build());
    ref.run(10);
    EXPECT_EQ(ref.regs()[1], 50u);
}

TEST(Builder, RegisterReadsAreMerged)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    compiler::Val a = b.readReg(3);
    compiler::Val c = b.readReg(3); // same register
    b.writeReg(1, b.add(a, c));
    b.branchHalt();
    isa::Program p = pb.build();
    EXPECT_EQ(p.block(0).reads().size(), 1u);
}

TEST(Builder, LastRegisterWriteWins)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    b.writeReg(1, b.imm(10));
    b.writeReg(1, b.imm(20));
    b.branchHalt();
    RefExecutor ref(pb.build());
    ref.run(10);
    EXPECT_EQ(ref.regs()[1], 20u);
}

TEST(Builder, LsidsFollowEmissionOrder)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    compiler::Val addr = b.imm(0x100);
    compiler::Val x = b.load(addr, 8);     // LSID 0
    b.store(addr, b.addi(x, 1), 8);        // LSID 1
    compiler::Val y = b.load(addr, 8);     // LSID 2
    b.writeReg(1, y);
    b.branchHalt();
    isa::Program p = pb.build();
    std::vector<Lsid> lsids;
    for (const auto &in : p.block(0).insts())
        if (isa::isMem(in.op))
            lsids.push_back(in.lsid);
    EXPECT_EQ(lsids, (std::vector<Lsid>{0, 1, 2}));
}

TEST(Builder, ExitsAreDeduplicated)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("a");
    unsigned e1 = b.addExit("b");
    unsigned e2 = b.addExit("b");
    EXPECT_EQ(e1, e2);
    b.branch(b.imm(0));
    auto &b2 = pb.newBlock("b");
    b2.branchHalt();
    isa::Program p = pb.build();
    EXPECT_EQ(p.block(0).exits().size(), 1u);
    EXPECT_EQ(p.block(0).exits()[0], p.blockByName("b"));
}

TEST(Builder, BranchCondExitArrangement)
{
    // cond != 0 must reach "yes"; cond == 0 must reach "no".
    for (int cond : {0, 1}) {
        ProgramBuilder pb("t");
        auto &b = pb.newBlock("start");
        b.branchCond(b.imm(cond), "yes", "no");
        auto &y = pb.newBlock("yes");
        y.writeReg(1, y.imm(111));
        y.branchHalt();
        auto &n = pb.newBlock("no");
        n.writeReg(1, n.imm(222));
        n.branchHalt();
        pb.setEntry("start");
        RefExecutor ref(pb.build());
        ref.run(10);
        EXPECT_EQ(ref.regs()[1], cond ? 111u : 222u);
    }
}

TEST(Builder, ValOwnershipIsChecked)
{
    ProgramBuilder pb("t");
    auto &a = pb.newBlock("a");
    auto &b = pb.newBlock("b");
    compiler::Val v = a.imm(1);
    EXPECT_PANIC((void)b.addi(v, 1), "different BlockBuilder");
}

TEST(Builder, SecondBranchIsRejected)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("a");
    b.branchHalt();
    EXPECT_PANIC(b.branchHalt(), "second branch");
}

TEST(Builder, UnknownExitNameIsRejected)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("a");
    b.branchTo("nowhere");
    EXPECT_PANIC((void)pb.build(), "unknown block");
}

TEST(Builder, CapacityOverflowIsRejected)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("a");
    compiler::Val acc = b.imm(0);
    for (int i = 0; i < 200; ++i)
        acc = b.addi(acc, 1);
    b.writeReg(1, acc);
    b.branchHalt();
    EXPECT_PANIC((void)pb.build(), "split the block");
}

// ---------------------------------------------------------------------------
// Reference executor.
// ---------------------------------------------------------------------------

TEST(RefExecutor, SequentialMemorySemantics)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    compiler::Val addr = b.imm(0x100);
    compiler::Val x = b.load(addr, 8);      // reads init value 5
    b.store(addr, b.addi(x, 1), 8);         // writes 6
    compiler::Val y = b.load(addr, 8);      // must see 6
    b.writeReg(1, y);
    b.branchHalt();
    pb.initDataWords(0x100, {5});
    RefExecutor ref(pb.build());
    auto r = ref.run(10);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(ref.regs()[1], 6u);
    EXPECT_EQ(ref.memory().read(0x100, 8), 6u);
}

TEST(RefExecutor, SubWordAccessesMerge)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    b.store(b.imm(0x200), b.imm(0xAB), 1, 3); // byte at 0x203
    b.writeReg(1, b.load(b.imm(0x200), 8));
    b.branchHalt();
    pb.initDataWords(0x200, {0x1111111111111111ull});
    RefExecutor ref(pb.build());
    ref.run(10);
    EXPECT_EQ(ref.regs()[1], 0x11111111AB111111ull);
}

TEST(RefExecutor, MisalignedLoadsStraddleWords)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    compiler::Val base = b.imm(0x300);
    b.writeReg(1, b.load(base, 4, 6)); // bytes 6..9
    b.writeReg(2, b.load(base, 8, 3)); // bytes 3..10
    b.branchHalt();
    pb.initDataWords(0x300,
                     {0x0807060504030201ull, 0x100f0e0d0c0b0a09ull});
    RefExecutor ref(pb.build());
    EXPECT_TRUE(ref.run(10).halted);
    EXPECT_EQ(ref.regs()[1], 0x0a090807u);
    EXPECT_EQ(ref.regs()[2], 0x0b0a090807060504ull);
}

TEST(RefExecutor, PartialWidthStoreToLoadForwarding)
{
    // A narrow store must be visible to wider (and narrower) loads
    // later in the same block.
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    compiler::Val base = b.imm(0x400);
    b.store(base, b.imm(0xBEEF), 2, 2); // halfword at 0x402
    b.writeReg(1, b.load(base, 8));     // whole word sees the patch
    b.writeReg(2, b.load(base, 1, 3));  // one byte of the patch
    b.branchHalt();
    pb.initDataWords(0x400, {0xffffffffffffffffull});
    RefExecutor ref(pb.build());
    EXPECT_TRUE(ref.run(10).halted);
    EXPECT_EQ(ref.regs()[1], 0xffffffffbeefffffull);
    EXPECT_EQ(ref.regs()[2], 0xbeu);
}

TEST(RefExecutor, SameAddressMixedWidthsInLsidOrder)
{
    // Loads and stores to one address interleave strictly in LSID
    // order within a block, whatever their widths.
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    compiler::Val addr = b.imm(0x500);
    b.writeReg(1, b.load(addr, 8));  // lsid 0: pristine word
    b.store(addr, b.imm(0xAA), 1);   // lsid 1: patch low byte
    b.writeReg(2, b.load(addr, 2));  // lsid 2: sees the byte
    b.store(addr, b.imm(0x9988), 2); // lsid 3: patch halfword
    b.writeReg(3, b.load(addr, 8));  // lsid 4: sees both stores
    b.branchHalt();
    pb.initDataWords(0x500, {0x1122334455667788ull});
    RefExecutor ref(pb.build());
    EXPECT_TRUE(ref.run(10).halted);
    EXPECT_EQ(ref.regs()[1], 0x1122334455667788ull);
    EXPECT_EQ(ref.regs()[2], 0x77aau);
    EXPECT_EQ(ref.regs()[3], 0x1122334455669988ull);
}

TEST(RefExecutor, BlockAtomicRegisterCommit)
{
    // A block's reads must see pre-block register values even when
    // the same register is written in the block.
    ProgramBuilder pb("t");
    pb.setInitReg(1, 100);
    auto &b = pb.newBlock("only");
    compiler::Val old = b.readReg(1);
    b.writeReg(1, b.addi(old, 1));
    b.writeReg(2, old); // must capture 100, not 101
    b.branchHalt();
    RefExecutor ref(pb.build());
    ref.run(10);
    EXPECT_EQ(ref.regs()[1], 101u);
    EXPECT_EQ(ref.regs()[2], 100u);
}

TEST(RefExecutor, FollowsDataDependentExits)
{
    ProgramBuilder pb("t");
    pb.setInitReg(1, 0);
    pb.setInitReg(2, 5);
    auto &loop = pb.newBlock("loop");
    compiler::Val i = loop.readReg(1);
    compiler::Val i2 = loop.addi(i, 1);
    loop.writeReg(1, i2);
    loop.branchCond(loop.tlt(i2, loop.readReg(2)), "loop", "done");
    auto &done = pb.newBlock("done");
    done.branchHalt();
    pb.setEntry("loop");
    RefExecutor ref(pb.build());
    auto r = ref.run(100);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.dynBlocks, 6u); // 5 loop iterations + done
    EXPECT_EQ(ref.regs()[1], 5u);
}

TEST(RefExecutor, BudgetStopsRunawayPrograms)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("spin");
    b.branchTo("spin");
    pb.setEntry("spin");
    RefExecutor ref(pb.build());
    auto r = ref.run(50);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.dynBlocks, 50u);
}

TEST(RefExecutor, TraceRecordsMemoryOpsInLsidOrder)
{
    ProgramBuilder pb("t");
    auto &b = pb.newBlock("only");
    compiler::Val a1 = b.imm(0x100);
    compiler::Val x = b.load(a1, 8);
    b.store(b.imm(0x108), x, 8);
    b.branchHalt();
    pb.initDataWords(0x100, {77});
    RefExecutor ref(pb.build());
    std::vector<BlockTrace> trace;
    ref.run(10, &trace);
    ASSERT_EQ(trace.size(), 1u);
    ASSERT_EQ(trace[0].memOps.size(), 2u);
    EXPECT_FALSE(trace[0].memOps[0].isStore);
    EXPECT_EQ(trace[0].memOps[0].addr, 0x100u);
    EXPECT_EQ(trace[0].memOps[0].value, 77u);
    EXPECT_TRUE(trace[0].memOps[1].isStore);
    EXPECT_EQ(trace[0].memOps[1].addr, 0x108u);
    EXPECT_EQ(trace[0].memOps[1].value, 77u);
}

TEST(RefExecutor, DetectsMemoryOrderDeadlock)
{
    // Store (LSID 0) whose data depends on a later load (LSID 1):
    // sequential memory semantics cannot execute this block.
    isa::Block blk("bad");
    isa::Instruction addr1;
    addr1.op = Opcode::MOVI;
    addr1.imm = 0x100;
    addr1.targets[0] = isa::Target::toOperand(2, 0); // st addr
    isa::Instruction addr2;
    addr2.op = Opcode::MOVI;
    addr2.imm = 0x200;
    addr2.targets[0] = isa::Target::toOperand(3, 0); // ld addr
    isa::Instruction st;
    st.op = Opcode::STD;
    st.lsid = 0;
    isa::Instruction ld;
    ld.op = Opcode::LDD;
    ld.lsid = 1;
    ld.targets[0] = isa::Target::toOperand(2, 1); // feeds st data!
    isa::Instruction br;
    br.op = Opcode::BRO;
    blk.insts() = {addr1, addr2, st, ld, br};
    blk.exits().push_back(isa::kHaltBlock);

    isa::Program p("bad");
    p.addBlock(blk);
    std::string why;
    ASSERT_TRUE(p.validate(&why)) << why; // structurally fine
    RefExecutor ref(p);
    EXPECT_PANIC(ref.run(1), "deadlock");
}

// ---------------------------------------------------------------------------
// Placement.
// ---------------------------------------------------------------------------

isa::Program
chainProgram(unsigned length)
{
    ProgramBuilder pb("chain");
    auto &b = pb.newBlock("only");
    compiler::Val v = b.imm(1);
    for (unsigned i = 0; i < length; ++i)
        v = b.addi(v, 1);
    b.writeReg(1, v);
    b.branchHalt();
    return pb.build();
}

TEST(Placement, RespectsNodeCapacity)
{
    isa::Program p = chainProgram(100);
    GridGeom geom{4, 4, 8};
    Placement pl = placeBlock(p.block(0), geom);
    ASSERT_EQ(pl.nodeOf.size(), p.block(0).insts().size());
    for (unsigned count : pl.perNodeCount)
        EXPECT_LE(count, geom.slotsPerNode);
    for (auto n : pl.nodeOf)
        EXPECT_LT(n, geom.numNodes());
}

TEST(Placement, IsDeterministic)
{
    isa::Program p = chainProgram(60);
    GridGeom geom{4, 4, 8};
    Placement a = placeBlock(p.block(0), geom);
    Placement b = placeBlock(p.block(0), geom);
    EXPECT_EQ(a.nodeOf, b.nodeOf);
}

TEST(Placement, KeepsDependentChainsNearby)
{
    isa::Program p = chainProgram(8);
    GridGeom geom{4, 4, 8};
    Placement pl = placeBlock(p.block(0), geom);
    // Total hop distance along the chain should be small: a greedy
    // placer keeps consumers adjacent to producers.
    const auto &insts = p.block(0).insts();
    unsigned hops = 0;
    for (std::size_t i = 0; i < insts.size(); ++i)
        for (const auto &t : insts[i].targets)
            if (t.kind == TargetKind::Operand)
                hops += gridDistance(geom, pl.nodeOf[i],
                                     pl.nodeOf[t.index]);
    EXPECT_LE(hops, insts.size()); // average < 1 hop per edge
}

TEST(Placement, RejectsUndersizedGrid)
{
    isa::Program p = chainProgram(40);
    GridGeom geom{2, 2, 8}; // capacity 32 < 42 insts
    EXPECT_PANIC((void)placeBlock(p.block(0), geom), "grid too small");
}

TEST(Placement, GridDistanceIsManhattan)
{
    GridGeom geom{4, 4, 8};
    EXPECT_EQ(gridDistance(geom, geom.nodeId(0, 0), geom.nodeId(3, 3)),
              6u);
    EXPECT_EQ(gridDistance(geom, 5, 5), 0u);
}

} // namespace
} // namespace edge::compiler
