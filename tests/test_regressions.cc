/**
 * @file
 * Named regression tests for protocol bugs found (and fixed) during
 * development. Each test reconstructs the scenario that exposed the
 * bug; see DESIGN.md "Protocol engineering notes" for the analysis.
 */

#include <gtest/gtest.h>

#include "compiler/builder.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace edge {
namespace {

/**
 * Regression 1 — flush-recovery livelock on intra-block aliases.
 * A single-address read-modify-write where the load (lower LSID)
 * architecturally precedes the store in the same block, but the
 * *next* block's load aliases this block's store. Under blind+flush
 * the violating block is flushed and refetched; without the one-shot
 * replay hold the deterministic replay violates identically forever.
 */
isa::Program
intraBlockRmw(std::uint64_t n)
{
    compiler::ProgramBuilder pb("rmw_livelock");
    pb.setInitReg(1, 0);
    pb.setInitReg(2, n);
    pb.initDataWords(0x2000, {1});
    auto &loop = pb.newBlock("loop");
    compiler::Val i = loop.readReg(1);
    compiler::Val v = loop.load(loop.imm(0x2000), 8);
    // Deep data chain so the store resolves late and the next
    // block's load issues first.
    compiler::Val slow =
        loop.muli(loop.muli(loop.muli(v, 3), 5), 7);
    loop.store(loop.imm(0x2000), loop.andi(slow, 0xffff), 8);
    compiler::Val i2 = loop.addi(i, 1);
    loop.writeReg(1, i2);
    loop.branchCond(loop.tlt(i2, loop.readReg(2)), "loop", "done");
    auto &done = pb.newBlock("done");
    done.branchHalt();
    pb.setEntry("loop");
    return pb.build();
}

TEST(Regressions, FlushRecoveryDoesNotLivelock)
{
    sim::Simulator s(intraBlockRmw(100), sim::Configs::blindFlush());
    sim::RunResult r = s.run(5'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.archMatch);
}

/**
 * Regression 2 — commit-wave value time travel. A value computed
 * behind a long-latency operation (FP divide feeding a load address)
 * must never reach consumers earlier via a status upgrade than via
 * the data message it confirms. The symptom was DSRE "beating" the
 * dependence oracle on a serial pointer chase; the guard is that
 * DSRE can never be faster than the flush machine on an alias-free
 * serial chain (the two machines do identical work there).
 */
TEST(Regressions, CommitWaveCannotOutrunData)
{
    wl::KernelParams kp;
    kp.iterations = 300;
    sim::Simulator dsre(wl::build("mcfish", kp), sim::Configs::dsre());
    sim::Simulator flush(wl::build("mcfish", kp),
                         sim::Configs::blindFlush());
    sim::RunResult a = dsre.run();
    sim::RunResult b = flush.run();
    ASSERT_TRUE(a.halted && a.archMatch);
    ASSERT_TRUE(b.halted && b.archMatch);
    // Identical work: DSRE must not be measurably faster than flush
    // on the serial chase (small slack for commit-wave timing).
    EXPECT_LE(a.cycles * 100, b.cycles * 102);
}

/**
 * Regression 3 — re-execution storm collapse. An unbounded resend
 * budget on a deep same-address store chain amplifies corrective
 * waves geometrically. The budget must keep even the worst-case
 * kernel terminating (and the machine was congesting past the
 * watchdog without it). Budget 4 is the default; this pins the
 * bounded-budget guarantee on the storm kernel.
 */
TEST(Regressions, ResendBudgetPreventsStormCollapse)
{
    wl::KernelParams kp;
    kp.iterations = 400;
    core::MachineConfig cfg = sim::Configs::dsre();
    cfg.lsq.maxResendsPerLoad = 4;
    sim::Simulator s(wl::build("parserish", kp), cfg);
    sim::RunResult r = s.run(20'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.archMatch);
}

/**
 * Regression 4 — stranded deferral. When a deferred (over-budget)
 * load's *address* upgrade is the last finality event in the
 * machine, the final correction must bypass the budget or the
 * commit wave never completes (deadlock with an idle machine).
 * Exposed by fuzz seed 8 with value prediction enabled, which
 * maximises address-wave traffic.
 */
TEST(Regressions, DeferredLoadsStillJoinTheCommitWave)
{
    for (std::uint64_t seed : {8ull, 9ull, 10ull}) {
        wl::KernelParams kp;
        kp.iterations = 400;
        kp.seed = seed;
        core::MachineConfig cfg = sim::Configs::dsreVp();
        cfg.lsq.maxResendsPerLoad = 1; // maximal deferral pressure
        sim::Simulator s(wl::build("twolfish", kp), cfg);
        sim::RunResult r = s.run(20'000'000);
        EXPECT_TRUE(r.halted) << seed;
        EXPECT_TRUE(r.archMatch) << seed;
    }
}

/**
 * Regression 5 — cross-network reordering. Status (commit-wave)
 * messages travel on a different mesh than data and can arrive out
 * of order; every consumer must drop stale waves or a late data
 * message "downgrades" a Final value (which panics). Heavy network
 * contention plus value prediction reproduces the interleaving.
 */
TEST(Regressions, CrossNetworkReorderingIsHandled)
{
    wl::KernelParams kp;
    kp.iterations = 500;
    core::MachineConfig cfg = sim::Configs::dsreVp();
    cfg.core.hopLatency = 3; // widen the reordering window
    sim::Simulator s(wl::build("bzip2ish", kp), cfg);
    sim::RunResult r = s.run(20'000'000);
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.archMatch);
}

/**
 * Regression 6 — store-set dispatch-time capture. The LFST must be
 * read at load map time; reading it at address-ready time always
 * finds the load's own block's younger store and never serialises.
 * Observable end to end: on the deterministic stencil dependence,
 * a trained store-set machine must have (almost) no violations.
 */
TEST(Regressions, StoreSetsActuallySerialiseAfterTraining)
{
    wl::KernelParams kp;
    kp.iterations = 1000;
    sim::Simulator s(wl::build("swimish", kp),
                     sim::Configs::storeSetsFlush());
    sim::RunResult r = s.run();
    ASSERT_TRUE(r.halted && r.archMatch);
    // Blind speculation violates on ~every block here; a working
    // store-set predictor eliminates nearly all of them.
    EXPECT_LT(r.violations, r.committedBlocks / 20);
    EXPECT_GT(r.policyHolds, r.committedBlocks / 2);
}

/**
 * Regression 7 — value prediction is architecturally invisible.
 * Wrong guesses must always be corrected through the wave protocol
 * before commit; a tiny value-predicting machine with a cold table
 * (all guesses wrong at first touch) still commits exact state.
 */
TEST(Regressions, ValuePredictionNeverLeaksWrongValues)
{
    for (const char *k : {"mcfish", "equakeish", "gzipish"}) {
        wl::KernelParams kp;
        kp.iterations = 300;
        core::MachineConfig cfg = sim::Configs::dsreVp();
        cfg.lsq.vpLatencyThreshold = 0; // predict on every access
        sim::Simulator s(wl::build(k, kp), cfg);
        sim::RunResult r = s.run(20'000'000);
        EXPECT_TRUE(r.halted) << k;
        EXPECT_TRUE(r.archMatch) << k;
    }
}

} // namespace
} // namespace edge
