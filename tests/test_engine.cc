/**
 * @file
 * The event-driven cycle engine and its supporting pieces:
 *
 *  - core/scheduler: the calendar-wheel wake list (near window,
 *    overflow heap, wraparound, pruning, idempotence);
 *  - common/arena: the bump arena behind per-block bookkeeping;
 *  - core/program_image: one decode/validate/place per distinct
 *    program, shared read-only across Processors;
 *  - the engine differential: `--engine tick` and `--engine event`
 *    must produce bit-identical RunResults — cycles, every counter,
 *    every histogram bucket, and (under chaos) the same structured
 *    failure — across kernels x mechanisms x chaos seeds and across
 *    20 fuzz-generated programs. This is the guardrail that lets the
 *    wake-list engine replace the ticking loop as the default.
 */

#include <gtest/gtest.h>

#include "common/arena.hh"
#include "core/program_image.hh"
#include "core/scheduler.hh"
#include "fuzz/generator.hh"
#include "sim/run_pool.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace edge;

namespace {

// ---------------------------------------------------------------
// Scheduler

constexpr Cycle kIdle = core::Scheduler::kIdle;

TEST(Scheduler, EmptyIsIdle)
{
    core::Scheduler s;
    EXPECT_EQ(s.nextAtOrAfter(0), kIdle);
    EXPECT_EQ(s.nextAtOrAfter(1'000'000), kIdle);
}

TEST(Scheduler, NearWakeIsNonConsuming)
{
    core::Scheduler s;
    s.wakeAt(17);
    // The wake stays visible until the caller advances past it.
    EXPECT_EQ(s.nextAtOrAfter(0), 17u);
    EXPECT_EQ(s.nextAtOrAfter(17), 17u);
    EXPECT_EQ(s.nextAtOrAfter(18), kIdle);
}

TEST(Scheduler, EarliestOfSeveralWins)
{
    core::Scheduler s;
    s.wakeAt(90);
    s.wakeAt(40);
    s.wakeAt(70);
    EXPECT_EQ(s.nextAtOrAfter(0), 40u);
    EXPECT_EQ(s.nextAtOrAfter(41), 70u);
    EXPECT_EQ(s.nextAtOrAfter(71), 90u);
    EXPECT_EQ(s.nextAtOrAfter(91), kIdle);
}

TEST(Scheduler, DuplicateWakesAreIdempotent)
{
    core::Scheduler s;
    s.wakeAt(5);
    s.wakeAt(5);
    s.wakeAt(5);
    EXPECT_EQ(s.nextAtOrAfter(0), 5u);
    EXPECT_EQ(s.nextAtOrAfter(6), kIdle);
}

TEST(Scheduler, PastWakeClampsToNowInsteadOfVanishing)
{
    core::Scheduler s;
    EXPECT_EQ(s.nextAtOrAfter(100), kIdle); // window now starts at 100
    s.wakeAt(30); // already due: must surface, not silently drop
    EXPECT_EQ(s.nextAtOrAfter(100), 100u);
}

TEST(Scheduler, FarWakeBeyondTheWheelHorizon)
{
    core::Scheduler s;
    s.wakeAt(2'000'000); // far past the 1024-cycle near window
    s.wakeAt(500);
    EXPECT_EQ(s.nextAtOrAfter(0), 500u);
    EXPECT_EQ(s.nextAtOrAfter(501), 2'000'000u);
    EXPECT_EQ(s.nextAtOrAfter(2'000'001), kIdle);
}

TEST(Scheduler, WraparoundDoesNotAliasOldBits)
{
    core::Scheduler s;
    s.wakeAt(5);
    EXPECT_EQ(s.nextAtOrAfter(0), 5u);
    // Advance past the wake; cycle 5's wheel slot is also the slot
    // for cycle 5 + 1024. It must come back empty.
    EXPECT_EQ(s.nextAtOrAfter(6), kIdle);
    EXPECT_EQ(s.nextAtOrAfter(5 + 1024), kIdle);
    // And a genuine wake on the re-used slot still works.
    s.wakeAt(5 + 2048);
    EXPECT_EQ(s.nextAtOrAfter(5 + 1024), 5u + 2048u);
}

TEST(Scheduler, LargeJumpsClearTheWholeWheel)
{
    core::Scheduler s;
    for (Cycle c = 0; c < 1024; ++c)
        s.wakeAt(c);
    EXPECT_EQ(s.nextAtOrAfter(10'000'000), kIdle);
    s.wakeAt(10'000'123);
    EXPECT_EQ(s.nextAtOrAfter(10'000'000), 10'000'123u);
}

TEST(Scheduler, FarWakesMigrateCorrectlyAsTimeAdvances)
{
    core::Scheduler s;
    s.wakeAt(5'000);
    s.wakeAt(6'000);
    // Jump to just before the first far wake: it must be found even
    // though it was registered beyond the original near window.
    EXPECT_EQ(s.nextAtOrAfter(4'999), 5'000u);
    EXPECT_EQ(s.nextAtOrAfter(5'001), 6'000u);
}

// ---------------------------------------------------------------
// Arena

TEST(Arena, AlignedBumpAllocation)
{
    Arena a(256);
    void *p1 = a.alloc(3, 1);
    void *p8 = a.alloc(40, 8);
    void *p64 = a.alloc(10, 64);
    EXPECT_NE(p1, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p64) % 64, 0u);
    EXPECT_GE(a.bytesUsed(), 53u);
    EXPECT_GE(a.bytesReserved(), a.bytesUsed());
}

TEST(Arena, GrowsAcrossChunksAndHandlesOversizeRequests)
{
    Arena a(128);
    // Many small allocations spill into fresh chunks...
    for (int i = 0; i < 100; ++i)
        EXPECT_NE(a.alloc(32, 8), nullptr);
    // ...and a request larger than the chunk size gets its own chunk.
    std::uint16_t *big = a.allocArray<std::uint16_t>(4096);
    ASSERT_NE(big, nullptr);
    big[0] = 1;
    big[4095] = 2; // touch both ends: the region must be real
    EXPECT_EQ(big[0], 1);
    EXPECT_EQ(big[4095], 2);
}

TEST(Arena, ResetRetainsChunksAndReusesMemory)
{
    Arena a(256);
    void *first = a.alloc(64, 8);
    a.alloc(64, 8);
    std::size_t reserved = a.bytesReserved();
    a.reset();
    EXPECT_EQ(a.bytesUsed(), 0u);
    EXPECT_EQ(a.bytesReserved(), reserved); // chunks retained
    // The first post-reset allocation lands back at the start.
    EXPECT_EQ(a.alloc(64, 8), first);
}

// ---------------------------------------------------------------
// ProgramImage

TEST(ProgramImage, PlacementsAreCachedPerGeometry)
{
    wl::KernelParams kp;
    kp.iterations = 10;
    isa::Program prog = wl::build("gzipish", kp);
    core::ProgramImage image(prog);
    EXPECT_EQ(&image.program(), &prog);

    compiler::GridGeom geom; // default 4x4x8
    const std::vector<compiler::Placement> &a = image.placements(geom);
    const std::vector<compiler::Placement> &b = image.placements(geom);
    EXPECT_EQ(&a, &b); // same geometry: the same cached vector
    EXPECT_EQ(a.size(), prog.numBlocks());

    compiler::GridGeom wide = geom;
    wide.cols = 8;
    const std::vector<compiler::Placement> &c = image.placements(wide);
    EXPECT_NE(&a, &c); // distinct geometry: a distinct placement set
    EXPECT_EQ(c.size(), prog.numBlocks());
}

// ---------------------------------------------------------------
// Engine differential: tick vs event must be bit-identical.

void
expectIdentical(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedBlocks, b.committedBlocks);
    EXPECT_EQ(a.committedInsts, b.committedInsts);
    EXPECT_EQ(a.halted, b.halted);
    EXPECT_EQ(a.archMatch, b.archMatch);
    EXPECT_EQ(a.error.reason, b.error.reason);
    EXPECT_EQ(a.error.invariant, b.error.invariant);
    EXPECT_EQ(a.error.message, b.error.message);
    EXPECT_EQ(a.error.cycle, b.error.cycle);
    EXPECT_EQ(a.error.seq, b.error.seq);
    EXPECT_EQ(a.rngSeed, b.rngSeed);
    EXPECT_EQ(a.chaosSeed, b.chaosSeed);
    EXPECT_EQ(a.injections.total(), b.injections.total());
    EXPECT_EQ(a.invariantChecks, b.invariantChecks);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.resends, b.resends);
    EXPECT_EQ(a.reexecs, b.reexecs);
    EXPECT_EQ(a.upgrades, b.upgrades);
    // The full counter snapshot covers every stat the run produced:
    // a single skipped-but-not-inert cycle anywhere shows up here.
    EXPECT_EQ(a.counters, b.counters);
    ASSERT_EQ(a.histograms.size(), b.histograms.size());
    for (std::size_t i = 0; i < a.histograms.size(); ++i) {
        EXPECT_EQ(a.histograms[i].first, b.histograms[i].first);
        EXPECT_EQ(a.histograms[i].second.samples(),
                  b.histograms[i].second.samples());
        EXPECT_EQ(a.histograms[i].second.sum(),
                  b.histograms[i].second.sum());
        EXPECT_EQ(a.histograms[i].second.maxValue(),
                  b.histograms[i].second.maxValue());
        EXPECT_EQ(a.histograms[i].second.buckets(),
                  b.histograms[i].second.buckets());
    }
}

/** Jobs for `prog` under both engines: [0..n) tick, [n..2n) event. */
std::vector<sim::RunJob>
dualEngineJobs(const isa::Program &prog,
               const std::vector<std::string> &configs,
               const std::vector<std::uint64_t> &chaos_seeds)
{
    std::vector<sim::RunJob> jobs;
    for (core::EngineKind engine :
         {core::EngineKind::Tick, core::EngineKind::Event}) {
        for (const std::string &config : configs) {
            for (std::uint64_t seed : chaos_seeds) {
                sim::RunJob job;
                job.program = &prog;
                job.config = sim::Configs::byName(config);
                job.config.engine = engine;
                job.config.rngSeed = seed;
                if (seed != 0) {
                    job.config.chaos = chaos::ChaosParams::byProfile(
                        chaos::Profile::Light, seed);
                    job.config.checkInvariants = true;
                }
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

TEST(EngineDifferential, KernelsByMechanismsByChaosSeeds)
{
    // Clean runs (seed 0) plus two chaos-injected seeds, across the
    // mechanisms that exercise every recovery path: flush, DSRE, and
    // the conservative no-speculation baseline.
    const std::vector<std::string> configs = {
        "conservative", "blind-flush", "storesets-flush",
        "dsre",         "dsre-vp",
    };
    const std::vector<std::uint64_t> chaos_seeds = {0, 1, 2};

    for (const char *kernel : {"gzipish", "parserish", "swimish"}) {
        SCOPED_TRACE(kernel);
        wl::KernelParams kp;
        kp.iterations = 150;
        isa::Program prog = wl::build(kernel, kp);

        std::vector<sim::RunJob> jobs =
            dualEngineJobs(prog, configs, chaos_seeds);
        std::vector<sim::RunResult> results =
            sim::RunPool(4).runAll(jobs);

        std::size_t half = jobs.size() / 2;
        ASSERT_EQ(results.size(), half * 2);
        for (std::size_t i = 0; i < half; ++i) {
            SCOPED_TRACE("cell " + std::to_string(i) + " (" +
                         configs[i / chaos_seeds.size()] + ", seed " +
                         std::to_string(
                             chaos_seeds[i % chaos_seeds.size()]) +
                         ")");
            expectIdentical(results[i], results[half + i]);
        }
    }
}

TEST(EngineDifferential, WatchdogFiresAtTheSameCycle)
{
    // A watchdog shorter than the time to the first commit must trip
    // at the same cycle with the same machine dump under both
    // engines, even though the event engine reaches the deadline via
    // a scheduled wake rather than per-cycle polling.
    wl::KernelParams kp;
    kp.iterations = 200;
    isa::Program prog = wl::build("gzipish", kp);

    sim::RunJob tick;
    tick.program = &prog;
    tick.config = sim::Configs::byName("dsre");
    tick.config.engine = core::EngineKind::Tick;
    tick.config.core.watchdogCycles = 1;
    sim::RunJob event = tick;
    event.config.engine = core::EngineKind::Event;

    std::vector<sim::RunResult> r = sim::RunPool(2).runAll({tick, event});
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].error.reason, chaos::SimError::Reason::Watchdog);
    expectIdentical(r[0], r[1]);
}

TEST(EngineDifferential, TwentyFuzzSeedsWithChaos)
{
    // Random hyperblock programs are the adversarial input the
    // hand-written kernels can't provide: odd block shapes, dense
    // store aliasing, deep predicate chains. 20 seeds x 2 configs,
    // chaos-injected, both engines — identical results or identical
    // structured failures.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SCOPED_TRACE("fuzz seed " + std::to_string(seed));
        isa::Program prog = fuzz::generate(seed);

        std::vector<sim::RunJob> jobs =
            dualEngineJobs(prog, {"dsre", "storesets-flush"}, {seed});
        std::vector<sim::RunResult> results =
            sim::RunPool(4).runAll(jobs);

        std::size_t half = jobs.size() / 2;
        ASSERT_EQ(results.size(), half * 2);
        for (std::size_t i = 0; i < half; ++i) {
            SCOPED_TRACE("cell " + std::to_string(i));
            expectIdentical(results[i], results[half + i]);
        }
    }
}

} // namespace
