/**
 * @file
 * panic() no longer aborts the process: it raises edge::SimFailure so
 * the run loop can degrade gracefully into a structured SimError.
 * Tests assert a panic fires by catching the exception and matching
 * its message — the replacement for the old abort-based EXPECT_DEATH
 * checks. (fatal() still aborts; use EXPECT_DEATH for that.)
 */

#ifndef EDGE_TESTS_PANIC_CHECK_HH
#define EDGE_TESTS_PANIC_CHECK_HH

#include <cstring>

#include <gtest/gtest.h>

#include "common/logging.hh"

#define EXPECT_PANIC(stmt, substr)                                     \
    do {                                                               \
        bool caught_panic_ = false;                                    \
        try {                                                          \
            stmt;                                                      \
        } catch (const edge::SimFailure &pc_e_) {                      \
            caught_panic_ = true;                                      \
            EXPECT_NE(std::strstr(pc_e_.what(), substr), nullptr)      \
                << "panic message '" << pc_e_.what()                   \
                << "' does not contain '" << substr << "'";            \
        }                                                              \
        EXPECT_TRUE(caught_panic_)                                     \
            << "expected a panic containing: " << substr;              \
    } while (0)

#endif // EDGE_TESTS_PANIC_CHECK_HH
