/**
 * @file
 * edgesim — command-line driver for the simulator. Runs any workload
 * kernel under any mechanism with ad-hoc parameter overrides and
 * prints the result plus (optionally) the full statistics dump.
 *
 *   edgesim --list
 *   edgesim --kernel bzip2ish --config dsre --iterations 5000
 *   edgesim --kernel twolfish --config storesets-flush \
 *           --set frames=16 --set hop=2 --set dram=200 --stats
 *   edgesim --kernel parserish --chaos-profile heavy --chaos-seed 7 \
 *           --check-invariants
 *   edgesim --kernel mcfish --chaos-profile light --chaos-sweep 20
 *   edgesim --replay failures/parserish-...-seed5.repro.json
 *
 * Recognised --set keys:
 *   frames, hop, fetch, commitports, l1dkb, l2kb, l2lat, dram,
 *   budget, seed
 *
 * Exit codes (see docs/PROTOCOL.md, "Failure triage"):
 *    0  clean run / convergent sweep / replay reproduced
 *    1  usage or configuration error
 *    2  architectural divergence (state differs from the reference)
 *    3  one or more sweep cells failed
 *    4  replay did NOT reproduce the recorded failure signature
 *   10  deadlock watchdog        11  invariant violation
 *   12  protocol panic           13  livelock
 *   14  host wall-clock deadline
 *   15  worker crash             16  worker killed
 *   17  worker timeout           18  worker protocol
 *   19  agent lost (campaign fabric)
 *   20  journal provenance mismatch (--strict-provenance)
 *   21  agent corrupt (result audit caught divergent bytes)
 *   128+N  supervised campaign interrupted by signal N
 *
 * Campaign fabric (docs/PROTOCOL.md, "Campaign fabric"):
 *   edgesim serve --listen 7733            # coordinator
 *   edgesim serve --agent host:7733        # executor agent
 *   edgesim --fuzz 200 --submit host:7733  # client submission
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/build_info.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "fuzz/diff.hh"
#include "serve/agent.hh"
#include "serve/daemon.hh"
#include "serve/simnet/explorer.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "super/campaign.hh"
#include "super/worker.hh"
#include "triage/minimize.hh"
#include "triage/repro.hh"
#include "workloads/workloads.hh"

using namespace edge;

namespace {

void
usage()
{
    std::printf(
        "usage: edgesim [--list] --kernel <name> [--config <name>]\n"
        "               [--iterations N] [--seed N] [--stats]\n"
        "               [--chaos-profile <name>] [--chaos-seed N]\n"
        "               [--check-invariants] [--chaos-sweep N]\n"
        "               [--mutate <name>] [--mutate-node N]\n"
        "               [--wall-deadline-ms N] [--engine tick|event]\n"
        "               [--capture-repro <dir>] [--minimize]\n"
        "               [-j N] [--set key=value ...]\n"
        "       edgesim --replay <file.repro.json> [--minimize] [-j N]\n"
        "       edgesim --fuzz N [--fuzz-seed S] [--fuzz-chaos <name>]\n"
        "               [--corpus-dir <dir>] [--minimize] [-j N]\n"
        "       edgesim serve --listen <port> [fabric options]\n"
        "       edgesim serve --agent <host:port> [--slots N] [--name S]\n"
        "       edgesim --fuzz N --submit <host:port>\n"
        "       edgesim --kernel K --chaos-sweep N --submit <host:port>\n"
        "       edgesim serve --simulate [--seeds A..B|N]\n"
        "               [--sim-profile <name>] [--fabsim-dir <dir>]\n"
        "       edgesim serve --replay <file.fabsim.json> [--minimize]\n"
        "\n"
        "  --fuzz N  differential fuzzing: N random hyperblock\n"
        "         programs, each run under every mechanism and\n"
        "         cross-checked against the reference executor\n"
        "  --fuzz-seed S  base generator seed (program i uses S+i)\n"
        "  --fuzz-chaos <name>  layer a chaos profile onto every run\n"
        "  --corpus-dir <dir>  one .repro.json per unique failure\n"
        "         signature, program embedded (with --minimize, also\n"
        "         a ddmin-shrunk .min.repro.json)\n"
        "  --list-kernels  print the kernel names, one per line\n"
        "\n"
        "  --engine tick|event  cycle-loop implementation (default\n"
        "         event). Bit-identical results either way; tick is\n"
        "         the original loop, kept as a differential reference\n"
        "\n"
        "  -j N   run grids / minimization on N worker threads\n"
        "         (default: hardware concurrency; results are\n"
        "         bit-identical to -j 1)\n"
        "\n"
        "supervised campaigns (sweeps and fuzzing):\n"
        "  --isolate  run every grid cell in a sandboxed child\n"
        "         process; a segfaulting/OOM-killed/hung cell becomes\n"
        "         a structured failure row, never a dead campaign\n"
        "  --journal-dir <dir>  durable group-commit result log of\n"
        "         completed cells (implies --isolate)\n"
        "  --resume <journal>  skip cells the journal marks final,\n"
        "         re-execute the rest, merge (implies --isolate)\n"
        "  --resume-threads N  redo workers for the recovery scan\n"
        "         (default: hardware threads; merge is identical at\n"
        "         any count)\n"
        "  --strict-provenance  refuse to resume a journal written\n"
        "         by a different build (exit 20) instead of warning\n"
        "  --log-group-ms N  group-commit window: max ms a record\n"
        "         waits for its batch fsync (default 5)\n"
        "  --log-segment-mb N  segment rotation size (default 64)\n"
        "  --log-chaos <point> / --log-chaos-seed N  deterministic\n"
        "         crash/IO-fault injection into the result log\n"
        "         (points: before-write mid-write after-write\n"
        "         before-fsync after-fsync before-rotate fail-fsync)\n"
        "  --cell-timeout-ms N  SIGKILL a cell past this deadline\n"
        "  --rlimit-as-mb N / --rlimit-cpu-sec N  child sandbox caps\n"
        "\n"
        "campaign fabric (multi-host; docs/PROTOCOL.md):\n"
        "  serve --listen <port>  coordinator: accepts agents and\n"
        "         campaign submissions, leases cells out, reassigns\n"
        "         on agent death, falls back to local workers\n"
        "  serve --agent <host:port>  executor agent: runs leased\n"
        "         cells via the --worker-cell isolation path\n"
        "  --submit <host:port>  run this --fuzz / --chaos-sweep\n"
        "         campaign on a coordinator instead of locally\n"
        "  --submit-timeout-ms N  client inactivity deadline: fail\n"
        "         the submit if the coordinator sends nothing for N\n"
        "         ms (must exceed the campaign duration; 0 = wait\n"
        "         forever)\n"
        "  coordinator knobs: --heartbeat-ms N, --heartbeat-timeout-ms\n"
        "         N, --lease-ms N, --max-reassign N, --once,\n"
        "         --no-local-fallback, --journal <file>, --resume\n"
        "         <file>, --fabric-chaos <profile>,\n"
        "         --fabric-chaos-seed N (profiles: none drop\n"
        "         duplicate partition kill heavy slow liar)\n"
        "  self-defence knobs: --hedge-after-ms N (straggler hedge\n"
        "         threshold; 0 = auto from fleet p95), --hedge-max N\n"
        "         (speculative leases per cell, 0 = off),\n"
        "         --audit-frac F (re-execute fraction F of clean\n"
        "         remote results on a second agent and byte-compare;\n"
        "         divergence quarantines the corrupt agent),\n"
        "         --max-queued N (shed submissions past N queued,\n"
        "         structured retry-after error; 0 = unbounded)\n"
        "  --submit-retries N  resubmissions after an admission-\n"
        "         control shed (honoring its retry_after_ms hint;\n"
        "         default 3)\n"
        "  agent knobs: --slots N, --name S, --die-after N,\n"
        "         --reconnect-max N (re-dial attempts after a dropped\n"
        "         coordinator connection, capped+jittered backoff;\n"
        "         in-flight cells keep running and finished results\n"
        "         are re-offered after re-registration; default 5)\n"
        "\n"
        "deterministic fabric simulation (docs/PROTOCOL.md):\n"
        "  serve --simulate  run whole simulated fabrics (coordinator,\n"
        "         agents, clients) on virtual time, one world per\n"
        "         seed, checking fabric invariants; failing seeds are\n"
        "         captured as self-contained .fabsim.json files\n"
        "  --seeds A..B | N  seed range (inclusive) or first-N\n"
        "  --sim-profile <name>  fault mix: none drop delay partition\n"
        "         crash-restart liar heavy\n"
        "  --sim-agents/--sim-cells/--sim-clients N  fix the world\n"
        "         shape (default: derived per seed)\n"
        "  --fabsim-dir <dir>  capture directory (default fabsim/)\n"
        "  --mutate no-hedge-revoke  arm the planted regression\n"
        "         (EDGE_MUTATIONS builds)\n"
        "  serve --replay <file.fabsim.json>  re-run a captured world\n"
        "         from its recorded event schedule; exits 0 iff the\n"
        "         violation reproduces (--minimize: ddmin the schedule\n"
        "         first, writing <file>.min.json)\n"
        "  --version  print the build provenance line\n"
        "  --capture-repro <dir>  write a .repro.json for every\n"
        "         failing run / sweep cell into <dir>\n"
        "  --replay <file>  re-run a captured failure; exits 0 iff\n"
        "         the failure signature reproduces exactly\n"
        "  --minimize  delta-debug the fault schedule of the failure\n"
        "         down to a locally minimal event set\n"
        "\n"
        "exit codes: 0 ok, 1 usage/config, 2 divergence, 3 sweep\n"
        "  failures, 4 replay mismatch, 10 watchdog, 11 invariant\n"
        "  violation, 12 protocol panic, 13 livelock, 14 host\n"
        "  deadline, 15-18 worker crash/kill/timeout/protocol,\n"
        "  19 agent lost, 20 provenance mismatch, 21 agent corrupt,\n"
        "  22 fabric-sim violation, 128+N interrupted by signal N\n"
        "\n"
        "configs: ");
    for (const auto &c : sim::Configs::allNames())
        std::printf("%s ", c.c_str());
    std::printf("\nchaos profiles: ");
    for (const auto &p : chaos::ChaosParams::profileNames())
        std::printf("%s ", p.c_str());
    std::printf("\nset keys: frames hop fetch commitports l1dkb l2kb "
                "l2lat dram budget\n");
}

void
applyOverride(core::MachineConfig &cfg, const std::string &key,
              std::uint64_t v)
{
    if (key == "frames")
        cfg.core.numFrames = static_cast<unsigned>(v);
    else if (key == "hop")
        cfg.core.hopLatency = static_cast<unsigned>(v);
    else if (key == "fetch")
        cfg.core.fetchWidth = static_cast<unsigned>(v);
    else if (key == "commitports")
        cfg.core.commitPortsPerNode = static_cast<unsigned>(v);
    else if (key == "l1dkb")
        cfg.mem.l1dSizeBytes = v * 1024;
    else if (key == "l2kb")
        cfg.mem.l2SizeBytes = v * 1024;
    else if (key == "l2lat")
        cfg.mem.l2HitLatency = static_cast<unsigned>(v);
    else if (key == "dram")
        cfg.mem.dramLatency = static_cast<unsigned>(v);
    else if (key == "budget")
        cfg.lsq.maxResendsPerLoad = static_cast<unsigned>(v);
    else
        fatal("unknown --set key '%s'", key.c_str());
}

/** The documented exit status for one finished run. */
int
runExitCode(const sim::RunResult &r)
{
    if (!r.error.ok()) {
        std::fprintf(stderr, "edgesim: %s\n",
                     chaos::reasonName(r.error.reason));
        return chaos::exitCodeFor(r.error.reason);
    }
    if (!(r.archMatch && r.halted)) {
        std::fprintf(stderr, "edgesim: divergence\n");
        return 2;
    }
    return 0;
}

void
printMinimized(const triage::MinimizeResult &m)
{
    std::printf("minimized schedule: %zu event(s) (from %zu tests, "
                "%u rounds%s):\n",
                m.schedule.size(), m.testsRun, m.rounds,
                m.converged ? "" : ", round cap hit");
    for (const chaos::FaultEvent &e : m.schedule)
        std::printf("  #%llu %s magnitude=%llu\n",
                    static_cast<unsigned long long>(e.ordinal),
                    chaos::faultSiteName(e.site),
                    static_cast<unsigned long long>(e.magnitude));
}

/**
 * Full minimization of one captured failure: program-level ddmin
 * first (for embedded programs), then the chaos-schedule ddmin on
 * the shrunk spec. Returns the minimized spec.
 */
triage::ReproSpec
minimizeSpec(const triage::ReproSpec &spec, unsigned threads)
{
    triage::MinimizeOptions mo;
    mo.threads = threads;
    triage::ReproSpec cur = spec;
    if (spec.program.hasEmbedded) {
        triage::ProgramMinimizeResult pm =
            triage::minimizeProgram(spec, mo);
        std::printf("minimized program: %zu block(s) (from %zu), "
                    "%zu effect(s) (from %zu); %zu tests, %u "
                    "rounds%s\n",
                    pm.blocksAfter, pm.blocksBefore, pm.effectsAfter,
                    pm.effectsBefore, pm.testsRun, pm.rounds,
                    pm.converged ? "" : ", round cap hit");
        cur = triage::applyProgram(cur, pm.program);
    }
    if (!cur.schedule.empty()) {
        triage::MinimizeResult sm = triage::minimizeRepro(cur, mo);
        printMinimized(sm);
        cur = triage::applySchedule(cur, sm);
    }
    return cur;
}

/** `foo.repro.json` -> `foo.min.repro.json` (or append `.min`). */
std::string
minimizedPath(const std::string &path)
{
    const std::string suffix = ".repro.json";
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) == 0)
        return path.substr(0, path.size() - suffix.size()) +
               ".min.repro.json";
    return path + ".min";
}

int
replayMain(const std::string &path, bool minimize, unsigned threads)
{
    triage::ReproSpec spec;
    std::string err;
    if (!triage::load(path, &spec, &err))
        fatal("--replay: %s", err.c_str());

    std::printf("replaying %s\n  recorded: %s\n", path.c_str(),
                triage::signatureLine(spec).c_str());
    sim::RunResult r = triage::replay(spec);

    triage::ReproSpec observed = triage::captureFromResult(
        spec.program, spec.config, spec.maxCycles, r);
    std::printf("  observed: %s\n",
                triage::signatureLine(observed).c_str());

    bool match = triage::sameSignature(spec, r);
    std::printf("replay %s the recorded failure\n",
                match ? "reproduced" : "DID NOT reproduce");
    if (match && minimize) {
        triage::ReproSpec min_spec = minimizeSpec(spec, threads);
        std::string out = minimizedPath(path);
        if (triage::save(min_spec, out, &err))
            std::printf("minimized repro: %s\n", out.c_str());
        else
            warn("could not save minimized repro: %s", err.c_str());
    }
    return match ? 0 : 4;
}

/** Partial-campaign banner + resume hint, shared by the interrupted
 *  sweep and fuzz paths (local Supervisor or serve Fabric — any
 *  CellRunner). Returns the 128+signal exit status. */
int
interruptedExit(const super::CellRunner &sup)
{
    int sig = super::stopSignal() ? super::stopSignal() : SIGINT;
    std::printf("campaign interrupted (%s): %zu cell(s) journaled "
                "this session, %zu replayed from the journal, %zu "
                "failure(s)\n",
                strsignal(sig), sup.completed(), sup.skipped(),
                sup.failures());
    std::string hint = sup.resumeHint();
    if (!hint.empty())
        std::printf("  %s\n", hint.c_str());
    return 128 + sig;
}

/** The fuzz banner, shared by the local and --submit paths so a
 *  remote campaign's stdout is byte-identical to a local one. */
void
fuzzHeader(const fuzz::FuzzOptions &opts)
{
    const std::vector<std::string> &configs =
        opts.configs.empty() ? fuzz::defaultConfigs() : opts.configs;
    std::printf("fuzz: %llu program(s) x %zu mechanism(s), base seed "
                "%llu%s\n",
                static_cast<unsigned long long>(opts.count),
                configs.size(),
                static_cast<unsigned long long>(opts.seed),
                opts.chaosProfile != chaos::Profile::None
                    ? ", chaos layered on"
                    : "");
}

/** Print a fuzz report (wherever it ran) and map it to an exit
 *  status. */
int
fuzzReportExit(const fuzz::FuzzReport &rep, bool minimize,
               unsigned threads, const super::CellRunner *sup)
{
    std::printf("fuzz: %llu run(s), %llu pass(es), %zu failure(s) "
                "(%llu duplicate(s)), %llu ref-hang(s)\n",
                static_cast<unsigned long long>(rep.runs),
                static_cast<unsigned long long>(rep.passes),
                rep.failures.size(),
                static_cast<unsigned long long>(rep.duplicates),
                static_cast<unsigned long long>(rep.refHangs));
    for (const fuzz::FuzzFailure &f : rep.failures) {
        if (!f.unique)
            continue;
        std::printf("  seed %llu / %s: %s [%s]\n",
                    static_cast<unsigned long long>(f.seed),
                    f.config.c_str(), fuzz::outcomeName(f.outcome),
                    f.signature.c_str());
        if (f.reproPath.empty())
            continue;
        std::printf("  to reproduce: edgesim --replay %s\n",
                    f.reproPath.c_str());
        if (minimize && f.outcome != fuzz::Outcome::RefHang) {
            triage::ReproSpec spec;
            std::string err;
            if (!triage::load(f.reproPath, &spec, &err)) {
                warn("cannot minimize %s: %s", f.reproPath.c_str(),
                     err.c_str());
                continue;
            }
            triage::ReproSpec min_spec = minimizeSpec(spec, threads);
            std::string out = minimizedPath(f.reproPath);
            if (triage::save(min_spec, out, &err))
                std::printf("  minimized repro: %s\n", out.c_str());
            else
                warn("could not save minimized repro: %s",
                     err.c_str());
        }
    }
    if (rep.interrupted && sup)
        return interruptedExit(*sup);
    if (rep.clean())
        std::printf("fuzz: all mechanisms agree with the reference\n");
    return rep.clean() ? 0 : 2;
}

int
fuzzMain(const fuzz::FuzzOptions &opts, bool minimize,
         unsigned threads, const super::CellRunner *sup = nullptr)
{
    fatal_if(minimize && opts.corpusDir.empty(),
             "--fuzz --minimize needs --corpus-dir (minimization "
             "starts from the captured .repro.json)");
    fuzzHeader(opts);
    fuzz::FuzzReport rep = fuzz::runCampaign(opts);
    return fuzzReportExit(rep, minimize, threads, sup);
}

/** `edgesim serve ...`: the coordinator daemon or an agent. */
int
serveCliMain(int argc, char **argv)
{
    serve::ServeOptions so;
    serve::AgentOptions ao;
    serve::simnet::ExplorerOptions xo;
    bool isAgent = false;
    bool haveListen = false;
    bool simulate = false;
    bool simMinimize = false;
    std::string simReplay;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "%s needs an argument",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--listen") {
            so.fabric.listenPort = static_cast<std::uint16_t>(
                std::strtoul(next(), nullptr, 10));
            haveListen = true;
        } else if (arg == "--agent") {
            ao.coordinator = next();
            isAgent = true;
        } else if (arg == "--slots") {
            ao.slots = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--name") {
            ao.name = next();
        } else if (arg == "--die-after") {
            ao.dieAfterResults = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--reconnect-max") {
            ao.reconnectMax = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--worker-path") {
            ao.workerPath = next();
            so.fabric.workerPath = ao.workerPath;
        } else if (arg == "-j" || arg == "--jobs") {
            so.fabric.localJobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--heartbeat-ms") {
            so.fabric.heartbeatMs =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--heartbeat-timeout-ms") {
            so.fabric.heartbeatTimeoutMs =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--lease-ms") {
            so.fabric.leaseMs = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--max-reassign") {
            so.fabric.maxReassign = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--hedge-after-ms") {
            so.fabric.hedgeAfterMs =
                std::strtoull(next(), nullptr, 10);
            xo.hedgeAfterMs = so.fabric.hedgeAfterMs;
        } else if (arg == "--hedge-max") {
            so.fabric.hedgeMax = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--audit-frac") {
            so.fabric.auditFrac = std::strtod(next(), nullptr);
            fatal_if(so.fabric.auditFrac < 0 ||
                         so.fabric.auditFrac > 1,
                     "--audit-frac expects a fraction in [0,1]");
            xo.auditFrac = so.fabric.auditFrac;
        } else if (arg == "--max-queued") {
            so.fabric.maxQueued = static_cast<std::size_t>(
                std::strtoull(next(), nullptr, 10));
            xo.maxQueued = so.fabric.maxQueued;
        } else if (arg == "--simulate") {
            simulate = true;
        } else if (arg == "--seeds") {
            std::string spec = next();
            auto dots = spec.find("..");
            if (dots == std::string::npos) {
                // "--seeds N" = the first N seeds.
                std::uint64_t n =
                    std::strtoull(spec.c_str(), nullptr, 10);
                fatal_if(n == 0, "--seeds expects N or A..B");
                xo.seedLo = 0;
                xo.seedHi = n - 1;
            } else {
                xo.seedLo =
                    std::strtoull(spec.c_str(), nullptr, 10);
                xo.seedHi = std::strtoull(
                    spec.c_str() + dots + 2, nullptr, 10);
                fatal_if(xo.seedHi < xo.seedLo,
                         "--seeds range is backwards");
            }
        } else if (arg == "--sim-profile") {
            fatal_if(!serve::simnet::simProfileByName(next(),
                                                      &xo.profile),
                     "unknown sim profile '%s'", argv[i]);
        } else if (arg == "--sim-agents") {
            xo.agents = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--sim-cells") {
            xo.cells = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--sim-clients") {
            xo.clients = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--fabsim-dir") {
            xo.fabsimDir = next();
        } else if (arg == "--replay") {
            simReplay = next();
        } else if (arg == "--minimize") {
            simMinimize = true;
        } else if (arg == "--mutate") {
            std::string m = next();
            fatal_if(m != "no-hedge-revoke",
                     "unknown fabric mutation '%s'", m.c_str());
            xo.mutateNoHedgeRevoke = true;
        } else if (arg == "--cell-timeout-ms") {
            so.fabric.cellTimeoutMs =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--rlimit-as-mb") {
            so.fabric.rlimitAsMb = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--rlimit-cpu-sec") {
            so.fabric.rlimitCpuSec =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--journal") {
            so.fabric.journalPath = next();
        } else if (arg == "--resume") {
            so.fabric.journalPath = next();
            so.fabric.resume = true;
        } else if (arg == "--log-group-ms") {
            so.fabric.logOptions.groupCommitMs =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--log-segment-mb") {
            so.fabric.logOptions.segmentBytes =
                std::strtoull(next(), nullptr, 10) * 1024 * 1024;
        } else if (arg == "--log-chaos") {
            fatal_if(!log::logCrashPointByName(
                         next(), &so.fabric.logOptions.chaos.point),
                     "unknown log crash point '%s'", argv[i]);
        } else if (arg == "--log-chaos-seed") {
            so.fabric.logOptions.chaos.seed =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--resume-threads") {
            so.fabric.resumeThreads = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--strict-provenance") {
            so.strictProvenance = true;
        } else if (arg == "--capture-repro") {
            so.fabric.reproDir = next();
        } else if (arg == "--no-local-fallback") {
            so.fabric.localFallback = false;
        } else if (arg == "--fabric-chaos") {
            fatal_if(!serve::fabricProfileByName(
                         next(), &so.fabric.chaosProfile),
                     "unknown fabric chaos profile '%s'", argv[i]);
        } else if (arg == "--fabric-chaos-seed") {
            so.fabric.chaosSeed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--once") {
            so.once = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            fatal("serve: unknown argument '%s'", arg.c_str());
        }
    }

    if (!simReplay.empty())
        return serve::simnet::replayMain(simReplay, simMinimize,
                                         xo.fabsimDir);
    if (simulate)
        return serve::simnet::exploreMain(xo);
    fatal_if(isAgent && haveListen,
             "serve: --agent and --listen are mutually exclusive");
    fatal_if(!isAgent && !haveListen,
             "serve: need --listen <port> (coordinator) or --agent "
             "<host:port>");
    if (isAgent)
        return serve::agentMain(ao);
    return serve::serveMain(so);
}

} // namespace

int
main(int argc, char **argv)
{
    // The worker half of the supervised-campaign protocol: re-entered
    // via fork/exec of /proc/self/exe. Dispatch before any other
    // argument handling — the spec arrives on stdin, the result
    // leaves on stdout, and nothing else may write there.
    if (argc >= 2 && std::strcmp(argv[1], "--worker-cell") == 0)
        return super::workerCellMain(std::cin, std::cout);

    // The campaign fabric: coordinator daemon or executor agent.
    if (argc >= 2 && std::strcmp(argv[1], "serve") == 0)
        return serveCliMain(argc, argv);

    std::string kernel;
    std::string config = "dsre";
    wl::KernelParams kp;
    bool dump_stats = false;
    std::uint64_t run_seed = 1;
    std::uint64_t chaos_seed = 0;
    chaos::Profile chaos_profile = chaos::Profile::None;
    bool check_invariants = false;
    std::uint64_t sweep_seeds = 0;
    unsigned threads = 0;
    chaos::Mutation mutation = chaos::Mutation::None;
    unsigned mutation_node = 0;
    std::uint64_t wall_deadline_ms = 0;
    core::EngineKind engine = core::MachineConfig{}.engine;
    std::string repro_dir;
    std::string replay_path;
    bool minimize = false;
    std::uint64_t fuzz_count = 0;
    std::uint64_t fuzz_seed = 1;
    std::string corpus_dir;
    bool isolate = false;
    std::string submit_to;
    std::uint64_t submit_timeout_ms = 0;
    unsigned submit_retries = 3;
    std::string journal_dir;
    std::string resume_path;
    std::uint64_t cell_timeout_ms = 0;
    std::uint64_t rlimit_as_mb = 0;
    std::uint64_t rlimit_cpu_sec = 0;
    log::LogOptions log_opts;
    unsigned resume_threads = 0;
    bool strict_provenance = false;
    std::vector<std::pair<std::string, std::uint64_t>> overrides;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "%s needs an argument",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--list") {
            std::printf("%-12s %-12s %s\n", "kernel", "models",
                        "behaviour");
            for (const auto &info : wl::kernels())
                std::printf("%-12s %-12s %s\n", info.name.c_str(),
                            info.specAnalog.c_str(),
                            info.description.c_str());
            return 0;
        } else if (arg == "--list-kernels") {
            for (const auto &name : wl::kernelNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--kernel") {
            kernel = next();
        } else if (arg == "--fuzz") {
            fuzz_count = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--fuzz-seed") {
            fuzz_seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--fuzz-chaos") {
            chaos_profile = chaos::ChaosParams::profileByName(next());
        } else if (arg == "--corpus-dir") {
            corpus_dir = next();
        } else if (arg == "--config") {
            config = next();
        } else if (arg == "--iterations") {
            kp.iterations = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            // One run-level seed: the workload generator and (unless
            // --chaos-seed overrides) the fault schedule derive from
            // it.
            run_seed = std::strtoull(next(), nullptr, 10);
            kp.seed = run_seed;
        } else if (arg == "--chaos-seed") {
            chaos_seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--chaos-profile") {
            chaos_profile = chaos::ChaosParams::profileByName(next());
        } else if (arg == "--check-invariants") {
            check_invariants = true;
        } else if (arg == "--chaos-sweep") {
            sweep_seeds = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--mutate") {
            mutation = chaos::mutationByName(next());
#ifndef EDGE_MUTATIONS
            fatal_if(mutation != chaos::Mutation::None,
                     "--mutate requires a build with EDGE_MUTATIONS=ON");
#endif
        } else if (arg == "--mutate-node") {
            mutation_node = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--wall-deadline-ms") {
            wall_deadline_ms = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--engine") {
            bool ok = false;
            engine = core::engineByName(next(), &ok);
            fatal_if(!ok, "--engine expects 'tick' or 'event'");
        } else if (arg == "--capture-repro") {
            repro_dir = next();
        } else if (arg == "--isolate") {
            isolate = true;
        } else if (arg == "--submit") {
            submit_to = next();
        } else if (arg == "--submit-timeout-ms") {
            submit_timeout_ms = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--submit-retries") {
            submit_retries = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--journal-dir") {
            journal_dir = next();
            isolate = true;
        } else if (arg == "--resume") {
            resume_path = next();
            isolate = true;
        } else if (arg == "--cell-timeout-ms") {
            cell_timeout_ms = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--rlimit-as-mb") {
            rlimit_as_mb = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--rlimit-cpu-sec") {
            rlimit_cpu_sec = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--log-group-ms") {
            log_opts.groupCommitMs = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--log-segment-mb") {
            log_opts.segmentBytes =
                std::strtoull(next(), nullptr, 10) * 1024 * 1024;
        } else if (arg == "--log-chaos") {
            fatal_if(!log::logCrashPointByName(next(),
                                               &log_opts.chaos.point),
                     "unknown log crash point '%s'", argv[i]);
        } else if (arg == "--log-chaos-seed") {
            log_opts.chaos.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--resume-threads") {
            resume_threads = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--strict-provenance") {
            strict_provenance = true;
        } else if (arg == "--version") {
            std::printf("edgesim %s\n", buildInfoLine().c_str());
            return 0;
        } else if (arg == "--replay") {
            replay_path = next();
        } else if (arg == "--minimize") {
            minimize = true;
        } else if (arg == "-j") {
            threads = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg.size() > 2 && arg.compare(0, 2, "-j") == 0) {
            threads = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 2, nullptr, 10));
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--set") {
            std::string kv = next();
            auto eq = kv.find('=');
            fatal_if(eq == std::string::npos,
                     "--set expects key=value");
            overrides.emplace_back(
                kv.substr(0, eq),
                std::strtoull(kv.c_str() + eq + 1, nullptr, 10));
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown argument '%s'", arg.c_str());
        }
    }

    if (!replay_path.empty())
        return replayMain(replay_path, minimize, threads);

    // --strict-provenance turns the resume build-mismatch warning
    // into a refusal, before any cell runs.
    if (strict_provenance && !resume_path.empty()) {
        std::string desc;
        if (super::Journal::provenanceMismatch(resume_path, &desc)) {
            std::fprintf(
                stderr,
                "edgesim: journal %s: %s; refusing to resume "
                "under --strict-provenance\n",
                resume_path.c_str(), desc.c_str());
            return chaos::exitCodeFor(
                chaos::SimError::Reason::ProvenanceMismatch);
        }
    }

    // Shared supervisor setup for the --isolate campaign paths.
    auto supervisorOptions =
        [&](const std::string &campaign) -> super::SupervisorOptions {
        super::SupervisorOptions so;
        so.jobs = threads;
        so.cellTimeoutMs = cell_timeout_ms;
        so.rlimitAsMb = rlimit_as_mb;
        so.rlimitCpuSec = rlimit_cpu_sec;
        if (!resume_path.empty())
            so.journalPath = resume_path;
        else if (!journal_dir.empty())
            so.journalPath =
                journal_dir + "/" + campaign + ".journal";
        so.resume = !resume_path.empty();
        so.logOptions = log_opts;
        so.resumeThreads = resume_threads;
        return so;
    };

    if (fuzz_count > 0) {
        fuzz::FuzzOptions fo;
        fo.count = fuzz_count;
        fo.seed = fuzz_seed;
        fo.chaosProfile = chaos_profile;
        fo.mutation = mutation;
        fo.mutationNode = mutation_node;
        fo.checkInvariants = check_invariants;
        fo.threads = threads;
        fo.corpusDir = corpus_dir;
        if (!submit_to.empty()) {
            // Remote campaign: same banner, same report printer —
            // stdout is byte-identical to the local run. Corpus
            // capture and minimization are local-only features.
            fatal_if(!corpus_dir.empty() || minimize,
                     "--submit campaigns cannot use --corpus-dir or "
                     "--minimize (they need local repro files)");
            fuzzHeader(fo);
            fuzz::FuzzReport rep;
            std::string err;
            if (!serve::submitFuzz(submit_to, fo, &rep, &err,
                                   submit_timeout_ms,
                                   submit_retries))
                fatal("--submit: %s", err.c_str());
            if (rep.interrupted)
                warn("campaign was interrupted on the coordinator; "
                     "the report is partial");
            return fuzzReportExit(rep, false, threads, nullptr);
        }
        if (isolate) {
            super::installStopHandlers();
            super::Supervisor sup(supervisorOptions(strfmt(
                "fuzz-seed%llu-n%llu",
                static_cast<unsigned long long>(fuzz_seed),
                static_cast<unsigned long long>(fuzz_count))));
            fo.batchRunner = super::fuzzBatchRunner(sup);
            return fuzzMain(fo, minimize, threads, &sup);
        }
        return fuzzMain(fo, minimize, threads);
    }

    if (kernel.empty()) {
        usage();
        return 1;
    }
    if (!wl::exists(kernel)) {
        std::fprintf(stderr,
                     "edgesim: unknown kernel '%s'; valid kernels:\n",
                     kernel.c_str());
        for (const auto &name : wl::kernelNames())
            std::fprintf(stderr, "  %s\n", name.c_str());
        return 2;
    }

    core::MachineConfig cfg = sim::Configs::byName(config);
    for (const auto &[k, v] : overrides)
        applyOverride(cfg, k, v);
    cfg.rngSeed = run_seed;
    cfg.chaos = chaos::ChaosParams::byProfile(chaos_profile, chaos_seed);
    cfg.chaos.mutation = mutation;
    cfg.chaos.mutationNode = mutation_node;
    cfg.checkInvariants = check_invariants;
    cfg.wallDeadlineMs = wall_deadline_ms;
    cfg.engine = engine;

    triage::ProgramRef prog_ref{kernel, kp};

    if (sweep_seeds > 0) {
        sim::ChaosSweepParams sp;
        for (std::uint64_t s = 0; s < sweep_seeds; ++s)
            sp.seeds.push_back(run_seed + s);
        sp.configs = {config};
        sp.profile = chaos_profile == chaos::Profile::None
                         ? chaos::Profile::Light
                         : chaos_profile;
        sp.threads = threads;
        sp.mutation = mutation;
        sp.mutationNode = mutation_node;
        if (!submit_to.empty()) {
            sim::ChaosSweepReport rep;
            bool interrupted = false;
            std::string err;
            if (!serve::submitSweep(submit_to, sp, prog_ref, &rep,
                                    &interrupted, &err,
                                    submit_timeout_ms,
                                    submit_retries))
                fatal("--submit: %s", err.c_str());
            if (!repro_dir.empty())
                triage::captureSweepFailures(rep, prog_ref,
                                             sp.maxCycles, repro_dir);
            std::printf("%s / %s chaos sweep (%s):\n%s",
                        kernel.c_str(), config.c_str(),
                        chaos::profileName(sp.profile),
                        rep.summary().c_str());
            if (interrupted) {
                warn("campaign was interrupted on the coordinator; "
                     "the report is partial");
                return 130;
            }
            return rep.allConverged() ? 0 : 3;
        }
        if (isolate) {
            super::installStopHandlers();
            super::Supervisor sup(supervisorOptions(
                strfmt("sweep-%s-%s", kernel.c_str(),
                       config.c_str())));
            bool interrupted = false;
            sim::ChaosSweepReport rep = super::chaosSweepIsolated(
                sp, prog_ref, sup, &interrupted);
            if (!repro_dir.empty())
                triage::captureSweepFailures(rep, prog_ref,
                                             sp.maxCycles, repro_dir);
            // Same banner as the in-process path on purpose: an
            // uninterrupted --isolate sweep's stdout is byte-
            // identical to the default one.
            std::printf("%s / %s chaos sweep (%s):\n%s",
                        kernel.c_str(), config.c_str(),
                        chaos::profileName(sp.profile),
                        rep.summary().c_str());
            if (interrupted)
                return interruptedExit(sup);
            return rep.allConverged() ? 0 : 3;
        }
        isa::Program prog = wl::build(kernel, kp);
        sim::ChaosSweepReport rep = sim::chaosSweep(prog, sp);
        if (!repro_dir.empty())
            triage::captureSweepFailures(rep, prog_ref, sp.maxCycles,
                                         repro_dir);
        std::printf("%s / %s chaos sweep (%s):\n%s", kernel.c_str(),
                    config.c_str(), chaos::profileName(sp.profile),
                    rep.summary().c_str());
        return rep.allConverged() ? 0 : 3;
    }

    sim::Simulator sim(wl::build(kernel, kp), cfg);
    sim::RunResult r = sim.run();

    std::printf("%s / %s: %llu cycles, %llu insts, IPC %.3f\n",
                kernel.c_str(), config.c_str(),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.committedInsts),
                r.ipc());
    std::printf("violations %llu, flushes %llu (+%llu ctrl), "
                "resends %llu, upgrades %llu, holds %llu\n",
                static_cast<unsigned long long>(r.violations),
                static_cast<unsigned long long>(r.violFlushes),
                static_cast<unsigned long long>(r.ctrlFlushes),
                static_cast<unsigned long long>(r.resends),
                static_cast<unsigned long long>(r.upgrades),
                static_cast<unsigned long long>(r.policyHolds));
    if (r.chaosSeed || r.injections.total() || r.invariantChecks) {
        std::printf(
            "chaos seed %llu: %llu injections (%llu hop, %llu dup, "
            "%llu mem, %llu store, %llu spurious); %llu invariant "
            "checks\n",
            static_cast<unsigned long long>(r.chaosSeed),
            static_cast<unsigned long long>(r.injections.total()),
            static_cast<unsigned long long>(r.injections.hopDelays),
            static_cast<unsigned long long>(r.injections.duplicates),
            static_cast<unsigned long long>(r.injections.memJitters),
            static_cast<unsigned long long>(r.injections.storeDelays),
            static_cast<unsigned long long>(
                r.injections.spuriousWaves),
            static_cast<unsigned long long>(r.invariantChecks));
    }
    std::printf("architectural state verified against the reference: "
                "%s\n",
                r.archMatch ? "PASS" : "FAIL");
    if (!r.error.ok())
        std::printf("run failed gracefully:\n%s\n",
                    r.error.format().c_str());
    if (dump_stats)
        std::printf("\n%s", sim.stats().dump().c_str());

    bool failed = !r.error.ok() || !(r.archMatch && r.halted);
    if (failed && !repro_dir.empty()) {
        triage::ReproSpec spec =
            triage::captureFromResult(prog_ref, cfg, 500'000'000, r);
        std::string path = triage::captureToFile(spec, repro_dir);
        if (!path.empty()) {
            std::printf("to reproduce: edgesim --replay %s\n",
                        path.c_str());
            if (minimize) {
                triage::MinimizeOptions mo;
                mo.threads = threads;
                printMinimized(triage::minimizeRepro(spec, mo));
            }
        }
    }
    return runExitCode(r);
}
